//! The user-site client process (Section 4.3; Figure 2): dispatches the
//! web-query to the StartNodes, collects results on its listening
//! endpoint, maintains the Current Hosts Table, and detects completion.

use std::collections::{BTreeMap, BTreeSet};

use webdis_disql::WebQuery;
use webdis_model::{SiteAddr, Url};
use webdis_net::{ChtEntry, CloneState, Disposition, Message, QueryClone, QueryId, ResultReport};
use webdis_rel::ResultRow;
use webdis_trace::{TermReason, TraceEvent as TrEvent, TraceRecord};

use crate::cht::Cht;
use crate::config::{CompletionMode, EngineConfig, ExpiryPolicy};
use crate::network::{query_server_addr, Network};

/// One entry of the execution trace, recorded per node report — this is
/// what the figure-reproduction harnesses print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual (or wall) time of receipt, µs.
    pub time_us: u64,
    /// The processed node.
    pub node: Url,
    /// The clone state it was processed in.
    pub state: CloneState,
    /// How the server disposed of it.
    pub disposition: Disposition,
    /// Stages answered at the node.
    pub stages_answered: Vec<u32>,
    /// Result rows produced.
    pub row_count: usize,
    /// Clones the node caused to be forwarded.
    pub forwards: usize,
}

/// The user-site client for one query.
pub struct UserSite {
    /// The query's global identity.
    pub id: QueryId,
    query: WebQuery,
    config: EngineConfig,
    /// The Current Hosts Table.
    pub cht: Cht,
    /// Collected rows per global stage index, with the producing node.
    pub results: BTreeMap<u32, Vec<(Url, ResultRow)>>,
    /// Per-report trace in arrival order.
    pub trace: Vec<TraceEvent>,
    /// True once the CHT reports completion.
    pub complete: bool,
    /// Virtual time of the first received result row.
    pub first_result_us: Option<u64>,
    /// Virtual time at which completion was detected.
    pub completed_at_us: Option<u64>,
    /// StartNode sites that refused the initial dispatch.
    pub unreachable_start_sites: Vec<SiteAddr>,
    /// In hybrid mode, StartNodes whose sites run no query server: their
    /// CHT entries stay live and the hybrid engine processes them
    /// centrally. Always empty otherwise.
    pub handoff_start: Vec<(Url, CloneState)>,
    /// Entries declared failed by [`UserSite::expire_stale`] — nodes whose
    /// servers never answered (crashed or lost clones).
    pub failed_entries: Vec<(Url, CloneState)>,
    /// Nodes refused under server-side admission control
    /// ([`Disposition::Shed`] reports): the servers were full, so these
    /// parts of the traversal were never processed. The query still
    /// completes — with [`TermReason::Shed`] — because the shedding
    /// server reports every refused node back explicitly.
    pub shed_entries: Vec<(Url, CloneState)>,
    /// Nodes whose documents were deleted before the clone arrived
    /// ([`Disposition::DeadLink`] reports, living-web link rot): those
    /// branches terminated gracefully at the rotten link. The query
    /// still completes cleanly — the rows are simply those reachable on
    /// the web as it existed during the traversal.
    pub dead_link_entries: Vec<(Url, CloneState)>,
    /// Outstanding StartNode clones under ack-chain completion (the
    /// user site is the Dijkstra–Scholten root).
    ack_deficit: u64,
    /// `(origin, seq)` of every network report already applied — the
    /// duplicate-delivery guard. A report replayed by the network (or a
    /// retrying sender) must not re-merge its rows or re-run its CHT
    /// deletes: in strict CHT mode a second delete for the same entry
    /// would tombstone and wedge completion forever.
    seen_reports: BTreeSet<(String, u64)>,
    started: bool,
}

impl UserSite {
    /// Creates the client; call [`UserSite::start`] to dispatch.
    pub fn new(id: QueryId, query: WebQuery, config: EngineConfig) -> UserSite {
        let cht = Cht::new(config.cht_mode);
        UserSite {
            id,
            query,
            config,
            cht,
            results: BTreeMap::new(),
            trace: Vec::new(),
            complete: false,
            first_result_us: None,
            completed_at_us: None,
            unreachable_start_sites: Vec::new(),
            handoff_start: Vec::new(),
            failed_entries: Vec::new(),
            shed_entries: Vec::new(),
            dead_link_entries: Vec::new(),
            ack_deficit: 0,
            seen_reports: BTreeSet::new(),
            started: false,
        }
    }

    /// `send_query` of Figure 2: enters the StartNodes into the CHT and
    /// dispatches the query to their sites (batched per site when
    /// optimization 4 is on).
    pub fn start(&mut self, net: &mut dyn Network) {
        assert!(!self.started, "query already started");
        self.started = true;
        self.cht.tick(net.now_us());
        if self.query.stages.is_empty() {
            self.complete = true;
            self.completed_at_us = Some(net.now_us());
            if let Some(monitor) = &self.config.monitor {
                monitor.retire(&self.id);
            }
            return;
        }
        let state = CloneState {
            num_q: self.query.stages.len() as u32,
            rem_pre: self.query.stages[0].pre.clone(),
        };
        // Group StartNodes by site.
        let mut groups: BTreeMap<SiteAddr, Vec<Url>> = BTreeMap::new();
        let mut seen = std::collections::BTreeSet::new();
        for node in &self.query.start_nodes {
            let node = node.without_fragment();
            if seen.insert(node.clone()) {
                groups.entry(node.site()).or_default().push(node);
            }
        }
        for (site, nodes) in groups {
            let batches: Vec<Vec<Url>> = if self.config.batch_per_site {
                vec![nodes]
            } else {
                nodes.into_iter().map(|n| vec![n]).collect()
            };
            let ack_mode = self.config.completion == CompletionMode::AckChain;
            for dest_nodes in batches {
                if !ack_mode {
                    for node in &dest_nodes {
                        self.cht.add(&ChtEntry {
                            node: node.clone(),
                            state: state.clone(),
                        });
                        self.emit(
                            net.now_us(),
                            None,
                            TrEvent::ChtAdd {
                                node: node.to_string(),
                            },
                        );
                    }
                }
                let clone = QueryClone {
                    id: self.id.clone(),
                    dest_nodes: dest_nodes.clone(),
                    rem_pre: state.rem_pre.clone(),
                    stages: self.query.stages.clone(),
                    stage_offset: 0,
                    hops: 0,
                    ack_host: self.id.host.clone(),
                    ack_port: self.id.port,
                };
                match net.send(&query_server_addr(&site), Message::Query(clone)) {
                    Ok(()) => {
                        self.emit(
                            net.now_us(),
                            Some(0),
                            TrEvent::QuerySent {
                                to_site: site.host.clone(),
                                nodes: dest_nodes.len() as u32,
                            },
                        );
                        if ack_mode {
                            self.ack_deficit += 1;
                        }
                    }
                    Err(_) => {
                        // No query server at a StartNode site. In hybrid
                        // mode (Section 7.1) the nodes are handed to the
                        // local fallback engine and their entries stay
                        // live; in pure distributed mode the entries are
                        // cleared so completion detection stays exact.
                        self.unreachable_start_sites.push(site.clone());
                        for node in &dest_nodes {
                            if self.config.hybrid {
                                self.handoff_start.push((node.clone(), state.clone()));
                            } else if !ack_mode {
                                self.cht.delete(node, &state);
                                self.emit(
                                    net.now_us(),
                                    None,
                                    TrEvent::ChtDelete {
                                        node: node.to_string(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        self.check_completion(net.now_us());
    }

    /// `receive_results` of Figure 2: stores results, marks the topmost
    /// CHT entry deleted, merges the new entries, and re-checks
    /// completion.
    pub fn on_message(&mut self, net: &mut dyn Network, msg: Message) {
        match msg {
            Message::Report(report) => {
                if report.id != self.id {
                    return; // some other query's stray report
                }
                if self.is_duplicate_report(&report.origin, report.seq) {
                    return; // the network delivered this report twice
                }
                self.apply_report(net.now_us(), report);
            }
            Message::Ack(ack) => {
                if ack.id != self.id || self.config.completion != CompletionMode::AckChain {
                    return;
                }
                self.ack_deficit = self.ack_deficit.saturating_sub(1);
                self.check_completion(net.now_us());
            }
            _ => {}
        }
    }

    /// Records a report's `(origin, seq)` identity and says whether it was
    /// already applied. `seq == 0` marks an untracked report (locally
    /// synthesized, never duplicated by a network) and always passes.
    pub(crate) fn is_duplicate_report(&mut self, origin: &str, seq: u64) -> bool {
        seq != 0 && !self.seen_reports.insert((origin.to_string(), seq))
    }

    /// Applies a report's effects (also used by the hybrid engine, which
    /// synthesizes reports for its locally-processed nodes).
    pub(crate) fn apply_report(&mut self, now_us: u64, report: ResultReport) {
        self.cht.tick(now_us);
        for node_report in report.reports {
            let mut stages_answered = Vec::new();
            let mut row_count = 0;
            for stage_rows in &node_report.results {
                stages_answered.push(stage_rows.stage);
                row_count += stage_rows.rows.len();
                let bucket = self.results.entry(stage_rows.stage).or_default();
                for row in &stage_rows.rows {
                    bucket.push((node_report.node.clone(), row.clone()));
                }
                if row_count > 0 && self.first_result_us.is_none() {
                    self.first_result_us = Some(now_us);
                }
            }
            self.trace.push(TraceEvent {
                time_us: now_us,
                node: node_report.node.clone(),
                state: node_report.state.clone(),
                disposition: node_report.disposition,
                stages_answered,
                row_count,
                forwards: node_report.new_entries.len(),
            });
            if node_report.disposition == Disposition::Shed {
                self.shed_entries
                    .push((node_report.node.clone(), node_report.state.clone()));
            }
            if node_report.disposition == Disposition::DeadLink {
                self.dead_link_entries
                    .push((node_report.node.clone(), node_report.state.clone()));
            }
            // Figure 2, lines 10–11: delete the topmost entry, then merge
            // the rest. (Under ack-chain completion no CHT travels and
            // none is kept.)
            if self.config.completion == CompletionMode::Cht {
                self.cht.delete(&node_report.node, &node_report.state);
                self.emit(
                    now_us,
                    None,
                    TrEvent::ChtDelete {
                        node: node_report.node.to_string(),
                    },
                );
                for entry in &node_report.new_entries {
                    self.cht.add(entry);
                    self.emit(
                        now_us,
                        None,
                        TrEvent::ChtAdd {
                            node: entry.node.to_string(),
                        },
                    );
                }
            }
        }
        self.check_completion(now_us);
    }

    /// Graceful recovery from node failures (Section 7.1 future work):
    /// declares CHT entries that made no progress within `timeout_us` as
    /// failed, records them in [`UserSite::failed_entries`], and lets
    /// completion detection conclude. Returns how many entries expired.
    /// Call periodically from the runtime's timer; a sound timeout is
    /// several times the expected per-hop round trip.
    ///
    /// CHT completion only: under [`CompletionMode::AckChain`] the user
    /// holds no per-node entries (only a root deficit), so there is
    /// nothing to expire and a stalled ack-chain query cannot be
    /// concluded gracefully — one more reason the CHT is the default.
    pub fn expire_stale(&mut self, now_us: u64, timeout_us: u64) -> usize {
        self.cht.tick(now_us);
        let failed = self.cht.expire_stale(timeout_us);
        let n = failed.len();
        for (node, _) in &failed {
            self.emit(
                now_us,
                None,
                TrEvent::EntryExpired {
                    node: node.to_string(),
                },
            );
        }
        self.failed_entries.extend(failed);
        self.check_completion(now_us);
        n
    }

    /// The runtime's expiry schedule for this query: `Some` when the
    /// config asks for graceful recovery AND the completion protocol can
    /// support it (see [`UserSite::expire_stale`] on why ack-chain
    /// cannot).
    pub fn expiry_policy(&self) -> Option<ExpiryPolicy> {
        match self.config.completion {
            CompletionMode::Cht => self.config.expiry,
            CompletionMode::AckChain => None,
        }
    }

    /// A human-readable diagnosis of why the query has not (cleanly)
    /// completed: the outstanding CHT state or ack deficit while running,
    /// the expired entries if completion was forced by
    /// [`UserSite::expire_stale`], and `None` for a clean completion.
    pub fn why_incomplete(&self) -> Option<String> {
        if !self.complete {
            return Some(match self.config.completion {
                CompletionMode::Cht => {
                    format!(
                        "incomplete: outstanding CHT state\n{}",
                        self.cht.debug_dump()
                    )
                }
                CompletionMode::AckChain => {
                    format!("incomplete: {} outstanding ack(s)", self.ack_deficit)
                }
            });
        }
        if !self.failed_entries.is_empty() {
            let nodes: Vec<String> = self
                .failed_entries
                .iter()
                .map(|(node, _)| node.to_string())
                .collect();
            return Some(format!(
                "completed via stale-entry expiry; {} unresolved node(s): {}",
                nodes.len(),
                nodes.join(", ")
            ));
        }
        if !self.shed_entries.is_empty() {
            let nodes: Vec<String> = self
                .shed_entries
                .iter()
                .map(|(node, _)| node.to_string())
                .collect();
            return Some(format!(
                "completed under load shedding; {} node(s) refused by admission control: {}",
                nodes.len(),
                nodes.join(", ")
            ));
        }
        if !self.dead_link_entries.is_empty() {
            let nodes: Vec<String> = self
                .dead_link_entries
                .iter()
                .map(|(node, _)| node.to_string())
                .collect();
            return Some(format!(
                "completed around link rot; {} dead link(s) terminated gracefully: {}",
                nodes.len(),
                nodes.join(", ")
            ));
        }
        None
    }

    fn check_completion(&mut self, now_us: u64) {
        let done = match self.config.completion {
            CompletionMode::Cht => self.cht.complete(),
            CompletionMode::AckChain => self.started && self.ack_deficit == 0,
        };
        if !self.complete && done {
            self.complete = true;
            self.completed_at_us = Some(now_us);
            let reason = match self.config.completion {
                CompletionMode::Cht if !self.failed_entries.is_empty() => TermReason::Expired,
                _ if !self.shed_entries.is_empty() => TermReason::Shed,
                CompletionMode::Cht => TermReason::ChtComplete,
                CompletionMode::AckChain => TermReason::AckComplete,
            };
            self.emit(now_us, None, TrEvent::Termination { reason });
            if let Some(monitor) = &self.config.monitor {
                monitor.retire(&self.id);
            }
        }
    }

    /// Rows collected for one global stage.
    pub fn rows_of_stage(&self, stage: u32) -> &[(Url, ResultRow)] {
        self.results.get(&stage).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total rows across all stages.
    pub fn total_rows(&self) -> usize {
        self.results.values().map(Vec::len).sum()
    }

    /// The parsed query (for header rendering).
    pub fn query(&self) -> &WebQuery {
        &self.query
    }

    /// Stamps one structured trace event at the user site.
    fn emit(&self, time_us: u64, hop: Option<u32>, event: TrEvent) {
        self.config.tracer.emit_with(|| TraceRecord {
            time_us,
            site: self.id.host.clone(),
            query: Some(self.id.clone()),
            hop,
            event,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RecordingNetwork;
    use webdis_disql::parse_disql;
    use webdis_net::{NodeReport, StageRows};
    use webdis_rel::Value;

    fn qid() -> QueryId {
        QueryId {
            user: "t".into(),
            host: "user.test".into(),
            port: 9,
            query_num: 1,
        }
    }

    fn single_stage_query(starts: &str) -> WebQuery {
        parse_disql(&format!(
            r#"select d.url from document d such that {starts} L* d"#
        ))
        .unwrap()
    }

    #[test]
    fn start_dispatches_one_clone_per_site() {
        let query = single_stage_query(r#""http://a.test/", "http://a.test/x", "http://b.test/""#);
        let mut user = UserSite::new(qid(), query, EngineConfig::default());
        let mut net = RecordingNetwork::default();
        user.start(&mut net);
        assert_eq!(net.sent.len(), 2, "a.test batched, b.test separate");
        let Message::Query(c) = &net.sent[0].1 else {
            panic!()
        };
        assert_eq!(c.dest_nodes.len(), 2);
        assert!(!user.complete);
    }

    #[test]
    fn unbatched_start_sends_per_node() {
        let query = single_stage_query(r#""http://a.test/", "http://a.test/x""#);
        let cfg = EngineConfig {
            batch_per_site: false,
            ..EngineConfig::default()
        };
        let mut user = UserSite::new(qid(), query, cfg);
        let mut net = RecordingNetwork::default();
        user.start(&mut net);
        assert_eq!(net.sent.len(), 2);
    }

    #[test]
    fn unreachable_start_site_terminates_immediately() {
        let query = single_stage_query(r#""http://ghost.test/""#);
        let mut user = UserSite::new(qid(), query, EngineConfig::default());
        let mut net = RecordingNetwork {
            unreachable: vec![query_server_addr(&SiteAddr {
                host: "ghost.test".into(),
                port: 80,
            })],
            ..RecordingNetwork::default()
        };
        user.start(&mut net);
        assert!(user.complete, "nothing outstanding → complete");
        assert_eq!(user.unreachable_start_sites.len(), 1);
    }

    #[test]
    fn report_stores_rows_and_completes() {
        let query = single_stage_query(r#""http://a.test/""#);
        let mut user = UserSite::new(qid(), query, EngineConfig::default());
        let mut net = RecordingNetwork::default();
        user.start(&mut net);
        let state = CloneState {
            num_q: 1,
            rem_pre: webdis_pre::parse("L*").unwrap(),
        };
        let report = ResultReport {
            id: qid(),
            origin: "a.test".into(),
            seq: 1,
            reports: vec![NodeReport {
                node: Url::parse("http://a.test/").unwrap(),
                state,
                disposition: Disposition::Answered,
                results: vec![StageRows {
                    stage: 0,
                    rows: vec![ResultRow {
                        values: vec![Value::Str("http://a.test/".into())],
                    }],
                }],
                new_entries: vec![],
            }],
        };
        net.time_us = 55;
        user.on_message(&mut net, Message::Report(report));
        assert!(user.complete);
        assert_eq!(user.total_rows(), 1);
        assert_eq!(user.first_result_us, Some(55));
        assert_eq!(user.completed_at_us, Some(55));
        assert_eq!(user.trace.len(), 1);
        assert_eq!(user.trace[0].disposition, Disposition::Answered);
    }

    #[test]
    fn shed_report_clears_entry_and_flags_query() {
        let query = single_stage_query(r#""http://a.test/""#);
        let mut user = UserSite::new(qid(), query, EngineConfig::default());
        let mut net = RecordingNetwork::default();
        user.start(&mut net);
        let state = CloneState {
            num_q: 1,
            rem_pre: webdis_pre::parse("L*").unwrap(),
        };
        let report = ResultReport {
            id: qid(),
            origin: "a.test".into(),
            seq: 1,
            reports: vec![NodeReport {
                node: Url::parse("http://a.test/").unwrap(),
                state,
                disposition: Disposition::Shed,
                results: vec![],
                new_entries: vec![],
            }],
        };
        user.on_message(&mut net, Message::Report(report));
        assert!(user.complete, "the shed report cleared the last CHT entry");
        assert_eq!(user.shed_entries.len(), 1);
        assert_eq!(user.total_rows(), 0);
        let why = user.why_incomplete().unwrap();
        assert!(why.contains("load shedding"), "{why}");
    }

    #[test]
    fn foreign_report_ignored() {
        let query = single_stage_query(r#""http://a.test/""#);
        let mut user = UserSite::new(qid(), query, EngineConfig::default());
        let mut net = RecordingNetwork::default();
        user.start(&mut net);
        let other = QueryId {
            query_num: 99,
            ..qid()
        };
        let report = ResultReport {
            id: other,
            origin: "a.test".into(),
            seq: 1,
            reports: vec![],
        };
        user.on_message(&mut net, Message::Report(report));
        assert!(!user.complete);
        assert!(user.trace.is_empty());
    }

    #[test]
    fn duplicate_report_delivery_is_idempotent() {
        // The same wire report delivered twice (a duplicating network)
        // must apply exactly once: rows are not double-counted and the
        // second CHT delete is never run. Exercised under strict CHT
        // accounting, where a replayed delete would otherwise tombstone
        // and wedge completion.
        let query = single_stage_query(r#""http://a.test/""#);
        let cfg = EngineConfig {
            cht_mode: crate::config::ChtMode::Strict,
            ..EngineConfig::default()
        };
        let mut user = UserSite::new(qid(), query, cfg);
        let mut net = RecordingNetwork::default();
        user.start(&mut net);
        let state = CloneState {
            num_q: 1,
            rem_pre: webdis_pre::parse("L*").unwrap(),
        };
        let report = ResultReport {
            id: qid(),
            origin: "a.test".into(),
            seq: 42,
            reports: vec![NodeReport {
                node: Url::parse("http://a.test/").unwrap(),
                state: state.clone(),
                disposition: Disposition::Answered,
                results: vec![StageRows {
                    stage: 0,
                    rows: vec![ResultRow {
                        values: vec![Value::Str("http://a.test/".into())],
                    }],
                }],
                new_entries: vec![],
            }],
        };
        user.on_message(&mut net, Message::Report(report.clone()));
        assert!(user.complete);
        assert_eq!(user.total_rows(), 1);
        user.on_message(&mut net, Message::Report(report.clone()));
        assert_eq!(user.total_rows(), 1, "duplicate rows not merged");
        assert_eq!(user.trace.len(), 1, "duplicate left no trace entry");
        assert!(user.complete, "no spurious tombstone from the replay");
        // A *distinct* report from the same origin still applies.
        let mut next = report;
        next.seq = 43;
        next.reports[0].results.clear();
        user.on_message(&mut net, Message::Report(next));
        assert_eq!(user.trace.len(), 2);
    }

    #[test]
    fn untracked_reports_bypass_the_dedupe() {
        // seq == 0 marks locally-synthesized reports (the hybrid
        // fallback); they are never deduped against each other.
        let query = single_stage_query(r#""http://a.test/""#);
        let mut user = UserSite::new(qid(), query, EngineConfig::default());
        assert!(!user.is_duplicate_report("local", 0));
        assert!(!user.is_duplicate_report("local", 0));
        assert!(!user.is_duplicate_report("a.test", 7));
        assert!(user.is_duplicate_report("a.test", 7));
        assert!(!user.is_duplicate_report("b.test", 7), "keyed per origin");
    }

    #[test]
    fn empty_query_is_immediately_complete() {
        // Parser forbids zero stages, so construct directly.
        let query = WebQuery {
            start_nodes: vec![],
            stages: vec![],
        };
        let mut user = UserSite::new(qid(), query, EngineConfig::default());
        let mut net = RecordingNetwork::default();
        user.start(&mut net);
        assert!(user.complete);
        assert!(net.sent.is_empty());
    }

    #[test]
    fn duplicate_start_nodes_deduped() {
        let query = single_stage_query(r#""http://a.test/", "http://a.test/""#);
        let mut user = UserSite::new(qid(), query, EngineConfig::default());
        let mut net = RecordingNetwork::default();
        user.start(&mut net);
        let Message::Query(c) = &net.sent[0].1 else {
            panic!()
        };
        assert_eq!(c.dest_nodes.len(), 1);
    }
}
