//! The Current Hosts Table (Section 2.7.1) — the user-site's completion
//! detector.
//!
//! For every clone forwarded anywhere in the Web, the forwarding server
//! first ships a CHT entry `(node, state)` to the user site; when the
//! clone is processed, the processing server's report deletes that entry.
//! The query is complete when every entry is deleted.
//!
//! Two refinements beyond the paper's description keep detection *exact*
//! on an asynchronous network:
//!
//! 1. **Tombstones.** A report can overtake the merge announcing its node
//!    (reports and merges travel on independent connections). A deletion
//!    with no matching entry is held as a tombstone and consumed by the
//!    matching add when it arrives; completion additionally requires the
//!    tombstone set to be empty.
//! 2. **Identical-only paper mode.** Section 3.1.1 says an entry
//!    "equivalent to a previous entry should not be entered into the CHT"
//!    because the target's log table will drop that clone silently. That
//!    is only *order-safe* for **identical** states: identity is
//!    symmetric, so the user's skip verdict matches the server's drop
//!    verdict no matter which message arrives first. Proper subsumption
//!    (`L*1·G` vs `L*2·G`) is order-sensitive — the server's verdict
//!    depends on which clone arrived there first, which the user cannot
//!    know — so servers *report* subsumption drops (a tiny `Duplicate`
//!    notice) and the user never skips on subsumption. The skip rule here
//!    is therefore exact-match only, plus two reorder guards: (a) a
//!    skipped add consumes a matching tombstone, and (b) a deletion whose
//!    state matches an already-deleted identical entry is ignored (it
//!    corresponds to an add this site skipped). [`ChtMode::Strict`]
//!    avoids the whole scheme by accounting one add and one delete per
//!    clone.

use webdis_model::Url;
use webdis_net::{ChtEntry, CloneState};

use crate::config::ChtMode;

/// Counters exposed for the CHT-overhead experiment (T4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChtStats {
    /// Entries added.
    pub added: u64,
    /// Adds skipped by the paper-mode equivalence rule.
    pub skipped: u64,
    /// Deletions applied to a live entry.
    pub deleted: u64,
    /// Deletions held as tombstones (report overtook its announcement).
    pub tombstoned: u64,
    /// Paper-mode deletions ignored because they correspond to a skipped
    /// add.
    pub deletes_ignored: u64,
    /// Entries declared failed by stale-entry expiry.
    pub expired: u64,
}

impl ChtStats {
    /// The counters as `(name, value)` pairs, for ingestion into a
    /// `webdis_trace::Registry` (the unified reporting surface).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("added", self.added),
            ("skipped", self.skipped),
            ("deleted", self.deleted),
            ("tombstoned", self.tombstoned),
            ("deletes_ignored", self.deletes_ignored),
            ("expired", self.expired),
        ]
    }
}

#[derive(Debug, Clone)]
struct Row {
    node: Url,
    state: CloneState,
    deleted: bool,
    /// Clock value when the row was added (drives stale-entry expiry).
    added_at_us: u64,
}

/// The table itself.
#[derive(Debug)]
pub struct Cht {
    mode: ChtMode,
    rows: Vec<Row>,
    tombstones: Vec<(Url, CloneState, u64)>,
    clock_us: u64,
    /// Operation counters.
    pub stats: ChtStats,
}

impl Cht {
    /// An empty table.
    pub fn new(mode: ChtMode) -> Cht {
        Cht {
            mode,
            rows: Vec::new(),
            tombstones: Vec::new(),
            clock_us: 0,
            stats: ChtStats::default(),
        }
    }

    /// Advances the table's clock (entries added afterwards carry this
    /// timestamp; expiry measures against it).
    pub fn tick(&mut self, now_us: u64) {
        self.clock_us = self.clock_us.max(now_us);
    }

    /// Would a server's log table *silently* drop an arrival in `new`
    /// given an earlier arrival in `old` at the same node? Only identical
    /// states qualify: identity is symmetric, so this verdict is the same
    /// at the user site and at the server regardless of which message
    /// arrives first. Proper-subsumption drops are order-sensitive and
    /// therefore always reported by the servers (never mirrored here).
    fn server_would_drop(&self, new: &CloneState, old: &CloneState) -> bool {
        new == old
    }

    /// Merges one announced entry.
    pub fn add(&mut self, entry: &ChtEntry) {
        // A deletion that arrived ahead of this announcement?
        if let Some(pos) = self
            .tombstones
            .iter()
            .position(|(n, s, _)| n == &entry.node && s == &entry.state)
        {
            self.tombstones.swap_remove(pos);
            self.rows.push(Row {
                node: entry.node.clone(),
                state: entry.state.clone(),
                deleted: true,
                added_at_us: self.clock_us,
            });
            self.stats.added += 1;
            self.stats.deleted += 1;
            return;
        }
        if self.mode == ChtMode::Paper {
            let skip = self
                .rows
                .iter()
                .any(|r| r.node == entry.node && self.server_would_drop(&entry.state, &r.state));
            if skip {
                self.stats.skipped += 1;
                return;
            }
        }
        self.rows.push(Row {
            node: entry.node.clone(),
            state: entry.state.clone(),
            deleted: false,
            added_at_us: self.clock_us,
        });
        self.stats.added += 1;
    }

    /// Applies the deletion carried by a node report (the "topmost entry"
    /// of Section 2.7.1).
    pub fn delete(&mut self, node: &Url, state: &CloneState) {
        if let Some(row) = self
            .rows
            .iter_mut()
            .find(|r| !r.deleted && r.node == *node && r.state == *state)
        {
            row.deleted = true;
            self.stats.deleted += 1;
            return;
        }
        if self.mode == ChtMode::Paper {
            // A deletion for an add this site skipped (or will skip): some
            // entry for the node makes the server-drop rule fire on this
            // state. Includes the identical-but-already-deleted case.
            let ignorable = self
                .rows
                .iter()
                .any(|r| r.node == *node && self.server_would_drop(state, &r.state));
            if ignorable {
                self.stats.deletes_ignored += 1;
                return;
            }
        }
        self.tombstones
            .push((node.clone(), state.clone(), self.clock_us));
        self.stats.tombstoned += 1;
    }

    /// Declares entries that have made no progress for `timeout_us` as
    /// **failed** — the graceful-recovery fallback of Section 7.1 for
    /// crashed query servers, whose clones (and hence deletions) will
    /// never arrive. Returns the failed `(node, state)` pairs; the rows
    /// are marked deleted so completion detection can conclude. Stale
    /// tombstones are discarded the same way. Expiry trades exactness for
    /// liveness: an over-eager timeout can only declare a query complete
    /// *with* an explicit list of unresolved nodes, never silently.
    pub fn expire_stale(&mut self, timeout_us: u64) -> Vec<(Url, CloneState)> {
        let cutoff = self.clock_us.saturating_sub(timeout_us);
        let mut failed = Vec::new();
        for row in &mut self.rows {
            if !row.deleted && row.added_at_us <= cutoff {
                row.deleted = true;
                failed.push((row.node.clone(), row.state.clone()));
            }
        }
        self.tombstones.retain(|(node, state, at)| {
            if *at <= cutoff {
                failed.push((node.clone(), state.clone()));
                false
            } else {
                true
            }
        });
        self.stats.expired += failed.len() as u64;
        failed
    }

    /// True when every entry is deleted and no tombstone is outstanding —
    /// the paper's "all entries in the CHTable are marked deleted".
    pub fn complete(&self) -> bool {
        self.tombstones.is_empty() && self.rows.iter().all(|r| r.deleted)
    }

    /// Live (non-deleted) entries — the nodes currently believed to host
    /// clones, which is what an *active* termination scheme would message.
    pub fn live_entries(&self) -> impl Iterator<Item = (&Url, &CloneState)> {
        self.rows
            .iter()
            .filter(|r| !r.deleted)
            .map(|r| (&r.node, &r.state))
    }

    /// Human-readable dump of live entries and tombstones (debugging and
    /// the `/why-incomplete` style diagnostics in harnesses).
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.rows {
            if !r.deleted {
                let _ = writeln!(out, "live: {} {}", r.node, r.state);
            }
        }
        for (n, s, _) in &self.tombstones {
            let _ = writeln!(out, "tomb: {n} {s}");
        }
        out
    }

    /// Total rows ever added (deleted included).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table never saw an entry.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn st(num_q: u32, pre: &str) -> CloneState {
        CloneState {
            num_q,
            rem_pre: webdis_pre::parse(pre).unwrap(),
        }
    }

    fn entry(node: &str, num_q: u32, pre: &str) -> ChtEntry {
        ChtEntry {
            node: url(node),
            state: st(num_q, pre),
        }
    }

    fn paper() -> Cht {
        Cht::new(ChtMode::Paper)
    }

    #[test]
    fn empty_table_is_complete() {
        assert!(paper().complete());
    }

    #[test]
    fn add_then_delete_completes() {
        let mut c = paper();
        c.add(&entry("http://a/", 1, "N"));
        assert!(!c.complete());
        c.delete(&url("http://a/"), &st(1, "N"));
        assert!(c.complete());
        assert_eq!(c.stats.added, 1);
        assert_eq!(c.stats.deleted, 1);
    }

    #[test]
    fn delete_before_add_uses_tombstone() {
        let mut c = paper();
        c.delete(&url("http://a/"), &st(1, "N"));
        assert!(!c.complete(), "outstanding tombstone blocks completion");
        c.add(&entry("http://a/", 1, "N"));
        assert!(c.complete());
        assert_eq!(c.stats.tombstoned, 1);
    }

    #[test]
    fn paper_mode_skips_identical_add() {
        let mut c = paper();
        c.add(&entry("http://a/", 1, "N"));
        c.add(&entry("http://a/", 1, "N"));
        assert_eq!(c.stats.skipped, 1);
        c.delete(&url("http://a/"), &st(1, "N"));
        assert!(c.complete());
    }

    #[test]
    fn subsumed_add_is_kept_and_cleared_by_reported_drop() {
        // Proper subsumption is order-sensitive, so the user never skips
        // on it: the entry is added and cleared by the server's explicit
        // Duplicate (or processing) report.
        let mut c = paper();
        c.add(&entry("http://a/", 1, "L*4·G"));
        c.add(&entry("http://a/", 1, "L*2·G"));
        assert_eq!(c.stats.added, 2);
        assert_eq!(c.stats.skipped, 0);
        c.delete(&url("http://a/"), &st(1, "L*2·G")); // reported drop
        c.delete(&url("http://a/"), &st(1, "L*4·G"));
        assert!(c.complete());
    }

    #[test]
    fn paper_mode_keeps_superset_add() {
        let mut c = paper();
        c.add(&entry("http://a/", 1, "L*2·G"));
        c.add(&entry("http://a/", 1, "L*4·G"));
        assert_eq!(c.stats.added, 2);
        c.delete(&url("http://a/"), &st(1, "L*2·G"));
        c.delete(&url("http://a/"), &st(1, "L*4·G"));
        assert!(c.complete());
    }

    #[test]
    fn strict_mode_counts_every_add() {
        let mut c = Cht::new(ChtMode::Strict);
        c.add(&entry("http://a/", 1, "N"));
        c.add(&entry("http://a/", 1, "N"));
        assert_eq!(c.stats.added, 2);
        c.delete(&url("http://a/"), &st(1, "N"));
        assert!(!c.complete(), "two adds need two deletes in strict mode");
        c.delete(&url("http://a/"), &st(1, "N"));
        assert!(c.complete());
    }

    #[test]
    fn diamond_race_any_merge_order_converges() {
        // The subsumption diamond under reordering: both states are
        // always added (no subsumption skip) and both drops/processings
        // are reported, so every interleaving converges.
        let mut c = paper();
        c.add(&entry("http://x/", 1, "L*3·G"));
        c.add(&entry("http://x/", 1, "L*2·G"));
        assert_eq!(c.stats.added, 2);
        c.delete(&url("http://x/"), &st(1, "L*2·G"));
        c.delete(&url("http://x/"), &st(1, "L*3·G"));
        assert!(c.complete());
    }

    #[test]
    fn diamond_race_delete_first_then_adds() {
        // Worst order: the narrow clone's delete arrives before *any* add
        // for the node, then both adds, then the wide delete.
        let mut c = paper();
        c.delete(&url("http://x/"), &st(1, "L*2·G")); // tombstone
        c.add(&entry("http://x/", 1, "L*3·G"));
        c.add(&entry("http://x/", 1, "L*2·G")); // consumes tombstone
        assert!(!c.complete());
        c.delete(&url("http://x/"), &st(1, "L*3·G"));
        assert!(
            c.complete(),
            "tombstone must be consumed by the matching add"
        );
    }

    #[test]
    fn identical_skip_then_duplicate_delete_ignored() {
        // An identical add is skipped; if (via some race) a delete for
        // that identical state arrives when the entry is already deleted,
        // it is ignored rather than tombstoned.
        let mut c = paper();
        c.add(&entry("http://x/", 1, "N"));
        c.add(&entry("http://x/", 1, "N")); // skipped (identical)
        assert_eq!(c.stats.skipped, 1);
        c.delete(&url("http://x/"), &st(1, "N"));
        assert!(c.complete());
        c.delete(&url("http://x/"), &st(1, "N")); // late duplicate notice
        assert_eq!(c.stats.deletes_ignored, 1);
        assert!(c.complete());
    }

    #[test]
    fn different_nodes_do_not_interact() {
        let mut c = paper();
        c.add(&entry("http://a/", 1, "N"));
        c.add(&entry("http://b/", 1, "N"));
        assert_eq!(c.stats.added, 2);
        c.delete(&url("http://a/"), &st(1, "N"));
        assert!(!c.complete());
        assert_eq!(c.live_entries().count(), 1);
    }

    #[test]
    fn different_num_q_same_node_both_tracked() {
        let mut c = paper();
        c.add(&entry("http://a/", 2, "N"));
        c.add(&entry("http://a/", 1, "N"));
        assert_eq!(c.stats.added, 2);
    }

    #[test]
    fn containment_drops_are_reported_not_mirrored() {
        // General-mode containment drops are non-identical, hence always
        // reported by the server; the user adds and clears both entries.
        let mut c = paper();
        c.add(&entry("http://a/", 1, "L·L*"));
        c.add(&entry("http://a/", 1, "L·L·L*")); // contained → server reports the drop
        assert_eq!(c.stats.added, 2);
        c.delete(&url("http://a/"), &st(1, "L·L·L*"));
        c.delete(&url("http://a/"), &st(1, "L·L*"));
        assert!(c.complete());
    }
}
