//! Result rendering — the paper's user-facing output.
//!
//! Section 4.1 says the QueryID exists partly "for collecting all the
//! results of a web-query in a single file", and Figure 8 shows that file
//! in a browser: a heading naming the query and user, then one table per
//! stage. [`render_html`] reproduces that shape (it is what the
//! `fig8_campus_results` harness verifies textually), and
//! [`render_text`] produces the same content for terminals.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use webdis_disql::WebQuery;
use webdis_model::Url;
use webdis_net::QueryId;
use webdis_rel::ResultRow;

/// Everything the renderers need, borrowed from a finished query.
pub struct ResultsView<'a> {
    /// The query's identity (for the heading).
    pub id: &'a QueryId,
    /// The parsed query (for per-stage column headers).
    pub query: &'a WebQuery,
    /// Rows per global stage.
    pub results: &'a BTreeMap<u32, Vec<(Url, ResultRow)>>,
}

impl<'a> ResultsView<'a> {
    /// A view over a finished [`UserSite`](crate::UserSite).
    pub fn of(user: &'a crate::UserSite) -> ResultsView<'a> {
        ResultsView {
            id: &user.id,
            query: user.query(),
            results: &user.results,
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the single-file HTML results page (Figure 8's shape).
pub fn render_html(view: &ResultsView<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<html>");
    let _ = writeln!(
        out,
        "<head><title>Results of query {} by user {}</title></head>",
        view.id.query_num,
        escape(&view.id.user)
    );
    let _ = writeln!(out, "<body>");
    let _ = writeln!(
        out,
        "<h1>Results of the query {} by user {}</h1>",
        view.id.query_num,
        escape(&view.id.user)
    );
    for (stage, rows) in view.results {
        let headers = view.query.stage_headers(*stage as usize);
        let _ = writeln!(out, "<h2>q{}</h2>", stage + 1);
        let _ = writeln!(out, "<table border=\"1\">");
        let _ = write!(out, "<tr><th>node</th>");
        for h in &headers {
            let _ = write!(out, "<th>{}</th>", escape(h));
        }
        let _ = writeln!(out, "</tr>");
        for (node, row) in rows {
            let _ = write!(out, "<tr><td>{}</td>", escape(&node.to_string()));
            for v in &row.values {
                let _ = write!(out, "<td>{}</td>", escape(&v.render()));
            }
            let _ = writeln!(out, "</tr>");
        }
        let _ = writeln!(out, "</table>");
    }
    let _ = writeln!(out, "</body>\n</html>");
    out
}

/// Renders the same content as aligned plain text.
pub fn render_text(view: &ResultsView<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Results of query #{} by user {}",
        view.id.query_num, view.id.user
    );
    for (stage, rows) in view.results {
        let headers = view.query.stage_headers(*stage as usize);
        let _ = writeln!(out, "\nq{}: {}", stage + 1, headers.join(" | "));
        for (node, row) in rows {
            let _ = writeln!(out, "  [{node}] {row}");
        }
        if rows.is_empty() {
            let _ = writeln!(out, "  (no rows)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_query_sim, EngineConfig, UserSite};
    use std::sync::Arc;
    use webdis_sim::SimConfig;
    use webdis_web::figures;

    fn with_finished_user<R>(f: impl FnOnce(&UserSite) -> R) -> R {
        let query = webdis_disql::parse_disql(figures::CAMPUS_QUERY).unwrap();
        let mut net = crate::simrun::build_sim(
            Arc::new(figures::campus()),
            query,
            EngineConfig::default(),
            SimConfig::default(),
        );
        let addr = crate::simrun::user_addr();
        net.start(&addr);
        net.run();
        let sim_user = net
            .actor_mut::<crate::simrun::SimUser>(&addr)
            .expect("user actor registered");
        f(&sim_user.user)
    }

    #[test]
    fn html_report_has_figure8_shape() {
        let html = with_finished_user(|user| render_html(&ResultsView::of(user)));
        assert!(html.contains("Results of the query 1 by user webdis"));
        assert!(html.contains("<h2>q1</h2>") && html.contains("<h2>q2</h2>"));
        for (url, title, convener) in figures::CAMPUS_EXPECTED {
            assert!(html.contains(url), "missing {url}");
            assert!(html.contains(title), "missing {title}");
            assert!(html.contains(convener), "missing {convener}");
        }
        // Headers come from the split select list.
        assert!(html.contains("<th>d0.url</th>"));
        assert!(html.contains("<th>r.text</th>"));
        // The page itself parses with our own HTML parser, naturally.
        let parsed = webdis_html::parse_html(&html);
        assert!(parsed.title.contains("Results of query 1"));
    }

    #[test]
    fn text_report_lists_all_rows() {
        let text = with_finished_user(|user| render_text(&ResultsView::of(user)));
        assert!(text.contains("q1: d0.url"));
        assert!(text.contains("q2: d1.url | d1.title | r.text"));
        assert!(text.contains("Jayant Haritsa"));
    }

    #[test]
    fn escaping_is_applied() {
        let outcome = run_query_sim(
            Arc::new(figures::campus()),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        // Synthetic check of the escaper itself.
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert!(outcome.complete);
    }

    /// A view built straight from adversarial parts, bypassing the
    /// engine: the renderer must escape whatever reaches it.
    fn adversarial_view<R>(
        user: &str,
        rows: Vec<(Url, ResultRow)>,
        f: impl FnOnce(&ResultsView<'_>) -> R,
    ) -> R {
        let id = QueryId {
            user: user.into(),
            host: "user.test".into(),
            port: 9900,
            query_num: 7,
        };
        let query = webdis_disql::parse_disql(
            r#"select d.url, d.title from document d such that "http://a.test/" L* d"#,
        )
        .unwrap();
        let mut results = BTreeMap::new();
        results.insert(0, rows);
        f(&ResultsView {
            id: &id,
            query: &query,
            results: &results,
        })
    }

    #[test]
    fn html_report_neutralizes_markup_in_user_and_values() {
        use webdis_rel::Value;
        let rows = vec![(
            Url::parse("http://a.test/p?x=1&y=2").unwrap(),
            ResultRow {
                values: vec![
                    Value::Str("<script>alert('xss')</script>".into()),
                    Value::Str("He said \"no\" & left".into()),
                ],
            },
        )];
        let html = adversarial_view("<b>mallory</b>", rows, render_html);
        // No raw markup from any injected fragment survives.
        assert!(!html.contains("<script>"), "{html}");
        assert!(!html.contains("<b>mallory</b>"), "{html}");
        assert!(
            html.contains("&lt;script&gt;alert('xss')&lt;/script&gt;"),
            "{html}"
        );
        assert!(html.contains("&lt;b&gt;mallory&lt;/b&gt;"), "{html}");
        assert!(html.contains("He said &quot;no&quot; &amp; left"), "{html}");
        // URL query strings get their ampersands escaped too.
        assert!(html.contains("http://a.test/p?x=1&amp;y=2"), "{html}");
        // The page still parses as HTML with exactly one table.
        assert_eq!(html.matches("<table").count(), 1);
        let parsed = webdis_html::parse_html(&html);
        assert!(parsed.title.contains("query 7"));
    }

    #[test]
    fn reports_render_empty_result_stages() {
        let html = adversarial_view("webdis", Vec::new(), render_html);
        // An empty stage still renders its heading and header row.
        assert!(html.contains("<h2>q1</h2>"), "{html}");
        assert!(html.contains("<th>d.url</th>"), "{html}");
        assert_eq!(html.matches("<tr>").count(), 1, "header row only: {html}");

        let text = adversarial_view("webdis", Vec::new(), render_text);
        assert!(text.contains("(no rows)"), "{text}");
    }
}
