//! The engine on real TCP sockets over loopback — the deployment shape of
//! the paper's Java prototype: one daemon (listener thread + engine) per
//! site, the user-site client collecting results on its own listening
//! socket, passive termination by closing that socket.
//!
//! Each simulated site gets an ephemeral `127.0.0.1` port; a shared
//! address map plays DNS. Experiments use the deterministic simulator;
//! this runtime exists to demonstrate (and integration-test) that the
//! identical engine code is operational over real sockets.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use webdis_disql::parse_disql;
use webdis_model::{SiteAddr, Url};
use webdis_net::{encode_message, Message, QueryId, RetryPolicy, TcpEndpoint, WireCounters};
use webdis_rel::ResultRow;
use webdis_trace::{MetricsExporter, TraceEvent as TrEvent, TraceHandle, TraceRecord};

use webdis_net::CloneState;

use crate::config::EngineConfig;
use crate::network::{query_server_addr, Network, NetworkError};
use crate::server::ServerEngine;
use crate::simrun::SimRunError;
use crate::user::{TraceEvent, UserSite};

/// Result of a TCP run (no byte metering — that is the simulator's job).
#[derive(Debug)]
pub struct TcpOutcome {
    /// True when the CHT detected completion within the deadline.
    pub complete: bool,
    /// Rows per global stage.
    pub results: BTreeMap<u32, Vec<(Url, ResultRow)>>,
    /// Node-report trace.
    pub trace: Vec<TraceEvent>,
    /// Wall-clock time from submission to *this query's* completion (the
    /// deadline, if it never completed).
    pub elapsed: Duration,
    /// Nodes written off by stale-entry expiry (Section 7.1).
    pub failed_entries: Vec<(Url, CloneState)>,
    /// Nodes refused by server-side admission control (load shedding).
    pub shed_entries: Vec<(Url, CloneState)>,
    /// Nodes whose documents were deleted before the clone arrived
    /// (living-web link rot). Always empty on a frozen web.
    pub dead_link_entries: Vec<(Url, CloneState)>,
    /// Diagnosis when the run was not cleanly complete; `None` for a
    /// clean run.
    pub why_incomplete: Option<String>,
}

/// A crash-restart window for one site's daemon: messages arriving
/// within `[start, start + down)` of the cluster epoch are discarded
/// (the process is dead), and the first poll past the window respawns
/// the engine via [`ServerEngine::restart`] — volatile state wiped,
/// exactly what a process respawn loses.
#[derive(Clone, Debug)]
pub struct CrashWindow {
    /// Host whose query daemon crashes.
    pub host: String,
    /// Window start, measured from cluster start.
    pub start: Duration,
    /// How long the daemon stays dead.
    pub down: Duration,
}

/// What the fault plan decided for one outgoing message.
enum FaultAction {
    None,
    /// Swallow the message; the sender believes the send succeeded.
    Drop,
    /// Flip a byte in the encoded frame before writing it, so the
    /// receiver's decode path rejects it (loss through `WireError`).
    Corrupt,
    /// Deliver the message, then deliver an identical second copy.
    Duplicate,
}

/// Deterministic send-fault injection for the TCP runtime: of all
/// `query`-kind messages dispatched across the whole run (user dispatch
/// and daemon forwards share one global counter), each fault kind claims
/// its own ordinal range `[skip, skip + n)`. Report-kind messages have
/// their own counter for duplication (the idempotence path under test).
/// Cloning shares the counters — every `TcpNet` handle in a run sees the
/// same plan. Crash-restart windows ride along and are consumed by the
/// daemon poll loops.
#[derive(Clone, Default)]
pub struct TcpFaultPlan {
    inner: Arc<FaultPlanInner>,
}

#[derive(Default)]
struct FaultPlanInner {
    skip_queries: usize,
    drop_queries: usize,
    corrupt_skip: usize,
    corrupt_queries: usize,
    dup_skip: usize,
    dup_reports: usize,
    crashes: Vec<CrashWindow>,
    counter: AtomicUsize,
    report_counter: AtomicUsize,
    dropped: AtomicUsize,
    corrupted: AtomicUsize,
    duplicated: AtomicUsize,
}

impl TcpFaultPlan {
    /// A plan that drops `drop_queries` query clones after letting the
    /// first `skip_queries` through.
    pub fn drop_queries(skip_queries: usize, drop_queries: usize) -> TcpFaultPlan {
        TcpFaultPlan::default().with_query_drops(skip_queries, drop_queries)
    }

    /// Adds a query-clone drop range to the plan.
    pub fn with_query_drops(self, skip: usize, n: usize) -> TcpFaultPlan {
        self.edit(|inner| {
            inner.skip_queries = skip;
            inner.drop_queries = n;
        })
    }

    /// Adds a query-clone byte-corruption range: the frames are encoded,
    /// one byte is flipped, and the mangled payload goes over the real
    /// socket so the receiver's decode error path runs.
    pub fn with_query_corruption(self, skip: usize, n: usize) -> TcpFaultPlan {
        self.edit(|inner| {
            inner.corrupt_skip = skip;
            inner.corrupt_queries = n;
        })
    }

    /// Adds a result-report duplication range: the affected reports are
    /// delivered twice, exercising the user site's `(origin, seq)`
    /// dedupe.
    pub fn with_report_dups(self, skip: usize, n: usize) -> TcpFaultPlan {
        self.edit(|inner| {
            inner.dup_skip = skip;
            inner.dup_reports = n;
        })
    }

    /// Adds a crash-restart window for one site's daemon.
    pub fn with_crash_window(self, host: &str, start: Duration, down: Duration) -> TcpFaultPlan {
        self.edit(|inner| {
            inner.crashes.push(CrashWindow {
                host: host.to_string(),
                start,
                down,
            })
        })
    }

    fn edit(mut self, f: impl FnOnce(&mut FaultPlanInner)) -> TcpFaultPlan {
        let inner = Arc::get_mut(&mut self.inner)
            .expect("fault plans are configured before the cluster starts");
        f(inner);
        self
    }

    /// How many messages the plan has swallowed so far.
    pub fn dropped_so_far(&self) -> usize {
        self.inner.dropped.load(Ordering::SeqCst)
    }

    /// How many frames the plan has corrupted so far.
    pub fn corrupted_so_far(&self) -> usize {
        self.inner.corrupted.load(Ordering::SeqCst)
    }

    /// How many reports the plan has delivered twice so far.
    pub fn duplicated_so_far(&self) -> usize {
        self.inner.duplicated.load(Ordering::SeqCst)
    }

    /// The crash windows scheduled for `host`, ordered by start.
    fn crash_windows_for(&self, host: &str) -> Vec<CrashWindow> {
        let mut windows: Vec<CrashWindow> = self
            .inner
            .crashes
            .iter()
            .filter(|w| w.host == host)
            .cloned()
            .collect();
        windows.sort_by_key(|w| w.start);
        windows
    }

    fn action_for(&self, msg: &Message) -> FaultAction {
        match msg {
            Message::Query(_) => {
                let has_faults = self.inner.drop_queries > 0 || self.inner.corrupt_queries > 0;
                if !has_faults {
                    return FaultAction::None;
                }
                let ordinal = self.inner.counter.fetch_add(1, Ordering::SeqCst);
                if self.inner.drop_queries > 0
                    && ordinal >= self.inner.skip_queries
                    && ordinal < self.inner.skip_queries + self.inner.drop_queries
                {
                    self.inner.dropped.fetch_add(1, Ordering::SeqCst);
                    return FaultAction::Drop;
                }
                if self.inner.corrupt_queries > 0
                    && ordinal >= self.inner.corrupt_skip
                    && ordinal < self.inner.corrupt_skip + self.inner.corrupt_queries
                {
                    self.inner.corrupted.fetch_add(1, Ordering::SeqCst);
                    return FaultAction::Corrupt;
                }
                FaultAction::None
            }
            Message::Report(_) => {
                if self.inner.dup_reports == 0 {
                    return FaultAction::None;
                }
                let ordinal = self.inner.report_counter.fetch_add(1, Ordering::SeqCst);
                if ordinal >= self.inner.dup_skip
                    && ordinal < self.inner.dup_skip + self.inner.dup_reports
                {
                    self.inner.duplicated.fetch_add(1, Ordering::SeqCst);
                    return FaultAction::Duplicate;
                }
                FaultAction::None
            }
            _ => FaultAction::None,
        }
    }
}

/// A `Network` that resolves site addresses through the shared map and
/// dispatches with one TCP connection per message (retried with backoff
/// on transient failures; connection-refused — the passive-termination
/// signal — is surfaced immediately). Obtained from
/// [`TcpCluster::user_net`]; one clone per thread.
#[derive(Clone)]
pub struct TcpNet {
    map: Arc<BTreeMap<SiteAddr, SocketAddr>>,
    epoch: Instant,
    /// Host name of the endpoint this handle belongs to, for trace stamps.
    from: String,
    tracer: TraceHandle,
    retry: RetryPolicy,
    faults: TcpFaultPlan,
    /// Shared per-kind wire meter — one per cluster, so `/metrics` sees
    /// traffic from every daemon and from the user-site client alike.
    wire: Arc<WireCounters>,
    /// Wall-clock queue wait of the message currently being handled,
    /// set by the daemon poll loop before `on_message` so the engine's
    /// `queue_us` span sees the channel dwell time. Always zero on
    /// client-side handles.
    queue_wait_us: u64,
}

impl TcpNet {
    fn emit(&self, msg: &Message, event: TrEvent) {
        self.tracer.emit_with(|| {
            let (query, hop) = match msg {
                Message::Query(c) => (Some(c.id.clone()), Some(c.hops)),
                Message::Report(r) => (Some(r.id.clone()), None),
                Message::Ack(a) => (Some(a.id.clone()), None),
                Message::Fetch(_) | Message::FetchReply(_) => (None, None),
            };
            TraceRecord {
                time_us: self.epoch.elapsed().as_micros() as u64,
                site: self.from.clone(),
                query,
                hop,
                event,
            }
        });
    }
}

impl Network for TcpNet {
    fn send(&mut self, to: &SiteAddr, msg: Message) -> Result<(), NetworkError> {
        let addr = self
            .map
            .get(to)
            .ok_or_else(|| NetworkError { to: to.clone() })?;
        let bytes = encode_message(&msg).len() as u64;
        let mut duplicate = false;
        match self.faults.action_for(&msg) {
            FaultAction::None => {}
            FaultAction::Drop => {
                // Injected loss: the sender believes the send succeeded,
                // exactly like a message lost in flight.
                self.wire.record_dropped(msg.kind(), bytes);
                self.emit(
                    &msg,
                    TrEvent::MessageDropped {
                        kind: msg.kind().to_string(),
                        to: to.host.clone(),
                        bytes: bytes as u32,
                        reason: "injected".into(),
                    },
                );
                return Ok(());
            }
            FaultAction::Corrupt => {
                // Flip one byte mid-frame and push the mangled payload
                // over the real socket: the receiver's decoder rejects
                // it, so this is loss exercised through the `WireError`
                // path rather than a silent swallow. No `MessageSent` is
                // emitted — the message never arrives.
                let mut payload = encode_message(&msg);
                let mid = payload.len() / 2;
                payload[mid] ^= 0xff;
                let _ = webdis_net::send_raw(addr, &payload);
                self.wire.record_dropped(msg.kind(), bytes);
                self.emit(
                    &msg,
                    TrEvent::MessageCorrupted {
                        kind: msg.kind().to_string(),
                        to: to.host.clone(),
                        bytes: bytes as u32,
                    },
                );
                return Ok(());
            }
            FaultAction::Duplicate => duplicate = true,
        }
        webdis_net::tcp::send_to_retrying(addr, &msg, self.retry, |attempt| {
            self.emit(
                &msg,
                TrEvent::SendRetried {
                    kind: msg.kind().to_string(),
                    to: to.host.clone(),
                    attempt,
                },
            );
        })
        .map_err(|_| NetworkError { to: to.clone() })?;
        self.wire.record_sent(msg.kind(), bytes);
        self.emit(
            &msg,
            TrEvent::MessageSent {
                kind: msg.kind().to_string(),
                to: to.host.clone(),
                bytes: bytes as u32,
            },
        );
        if duplicate {
            // Deliver an identical second copy (a retransmitting network).
            // The extra copy is metered as sent but traced as
            // `MessageDuplicated`, never as a second `MessageSent` — one
            // logical send, two deliveries.
            if webdis_net::tcp::send_to(addr, &msg).is_ok() {
                self.wire.record_sent(msg.kind(), bytes);
                self.emit(
                    &msg,
                    TrEvent::MessageDuplicated {
                        kind: msg.kind().to_string(),
                        to: to.host.clone(),
                        bytes: bytes as u32,
                    },
                );
            }
        }
        Ok(())
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn queue_wait_us(&self) -> u64 {
        self.queue_wait_us
    }
}

/// A deadline-aware expiry schedule for the TCP poll loops.
struct ExpiryTicker {
    policy: Option<crate::config::ExpiryPolicy>,
    last_sweep: Instant,
}

impl ExpiryTicker {
    fn new(policy: Option<crate::config::ExpiryPolicy>) -> ExpiryTicker {
        ExpiryTicker {
            policy,
            last_sweep: Instant::now(),
        }
    }

    /// Returns the timeout to sweep with when a sweep is due.
    fn due(&mut self) -> Option<u64> {
        let policy = self.policy?;
        if self.last_sweep.elapsed() < Duration::from_micros(policy.period_us) {
            return None;
        }
        self.last_sweep = Instant::now();
        Some(policy.timeout_us)
    }
}

/// A running loopback deployment: one query-server daemon thread per
/// site of the hosted web, one bound user endpoint, and the shared
/// address map playing DNS. All endpoints are bound before any daemon
/// starts, so the map is complete from the first message. The
/// single-query runners and the `webdis-load` workload driver all build
/// on this.
pub struct TcpCluster {
    epoch: Instant,
    user_site: SiteAddr,
    user_endpoint: TcpEndpoint,
    map: Arc<BTreeMap<SiteAddr, SocketAddr>>,
    stop: Arc<AtomicBool>,
    daemons: Vec<std::thread::JoinHandle<ServerEngine>>,
    tracer: TraceHandle,
    faults: TcpFaultPlan,
    wire: Arc<WireCounters>,
    exporters: Vec<(SiteAddr, MetricsExporter)>,
    sampler: Option<std::thread::JoinHandle<()>>,
    /// The living-web mutator thread (clusters started with
    /// [`TcpCluster::start_live`] and a schedule), joined at shutdown.
    mutator: Option<std::thread::JoinHandle<()>>,
}

impl TcpCluster {
    /// Binds every endpoint, then spawns one daemon per site. Each
    /// daemon's poll loop also runs the Section-3.1.1 periodic purge
    /// (when `engine_cfg.log_purge_us` is set) even while idle — under
    /// sustained multi-query load this bounds the log table and retires
    /// admission slots — and raises the `log_len_high_water` registry
    /// gauge after every processed message.
    pub fn start(
        web: Arc<webdis_web::HostedWeb>,
        engine_cfg: &EngineConfig,
        faults: TcpFaultPlan,
    ) -> TcpCluster {
        TcpCluster::start_view(webdis_web::WebView::Frozen(web), engine_cfg, faults, None)
    }

    /// [`TcpCluster::start`] over a shared living web, with an optional
    /// mutation schedule. When a schedule is given, a mutator thread
    /// applies each event at its wall-clock offset from the cluster
    /// epoch — pages change *while queries are in flight* — emitting one
    /// [`TrEvent::WebMutation`] per applied event. The thread is joined
    /// at [`TcpCluster::shutdown`].
    pub fn start_live(
        web: Arc<webdis_web::LiveWeb>,
        engine_cfg: &EngineConfig,
        faults: TcpFaultPlan,
        schedule: Option<webdis_web::MutationSchedule>,
    ) -> TcpCluster {
        TcpCluster::start_view(webdis_web::WebView::Live(web), engine_cfg, faults, schedule)
    }

    fn start_view(
        web: webdis_web::WebView,
        engine_cfg: &EngineConfig,
        faults: TcpFaultPlan,
        schedule: Option<webdis_web::MutationSchedule>,
    ) -> TcpCluster {
        let epoch = Instant::now();
        let user_site = SiteAddr {
            host: "user.test".into(),
            port: 9900,
        };
        let mut endpoints: Vec<(SiteAddr, TcpEndpoint)> = Vec::new();
        let mut map = BTreeMap::new();
        for site in web.sites() {
            let ep = TcpEndpoint::bind("127.0.0.1:0").expect("bind loopback");
            map.insert(query_server_addr(&site), ep.local_addr());
            endpoints.push((site, ep));
        }
        let user_endpoint = TcpEndpoint::bind("127.0.0.1:0").expect("bind loopback");
        map.insert(user_site.clone(), user_endpoint.local_addr());
        let map = Arc::new(map);
        let stop = Arc::new(AtomicBool::new(false));
        let wire = Arc::new(WireCounters::new());

        let mut daemons = Vec::new();
        let mut exporters = Vec::new();
        for (site, endpoint) in endpoints {
            // Each daemon serves its own `/metrics` endpoint: the shared
            // registry snapshot (when the run is traced) overlaid with
            // the cluster-wide `net.*` wire counters and an `up` gauge,
            // rendered in Prometheus text exposition format. With a noop
            // tracer the wire counters and gauge still get exported.
            let provider: Arc<dyn Fn() -> String + Send + Sync> = {
                let tracer = engine_cfg.tracer.clone();
                let wire = Arc::clone(&wire);
                Arc::new(move || {
                    let mut snap = tracer.registry_snapshot().unwrap_or_default();
                    for (name, value) in wire.counters() {
                        snap.put_counter(&format!("net.{name}"), value);
                    }
                    snap.put_gauge("up", 1);
                    snap.render_prometheus()
                })
            };
            // When a monitor runs, the same admin socket also serves its
            // live `/status` snapshot, and `/reset_high_water` re-arms
            // the registry's high-water gauges (scrapes never reset).
            let status = engine_cfg.monitor.clone().map(|monitor| {
                Arc::new(move || monitor.status_json(epoch.elapsed().as_micros() as u64))
                    as Arc<dyn Fn() -> String + Send + Sync>
            });
            let reset_high_water = {
                let tracer = engine_cfg.tracer.clone();
                Some(Arc::new(move || tracer.reset_high_water()) as Arc<dyn Fn() + Send + Sync>)
            };
            let exporter = MetricsExporter::spawn_routes(webdis_trace::AdminRoutes {
                metrics: provider,
                status,
                reset_high_water,
            })
            .expect("bind metrics endpoint");
            exporters.push((query_server_addr(&site), exporter));

            let mut engine = match &web {
                webdis_web::WebView::Frozen(w) => {
                    ServerEngine::new(site.clone(), Arc::clone(w), engine_cfg.clone())
                }
                webdis_web::WebView::Live(l) => {
                    ServerEngine::new_live(site.clone(), Arc::clone(l), engine_cfg.clone())
                }
            };
            let mut net = TcpNet {
                map: Arc::clone(&map),
                epoch,
                from: site.host.clone(),
                tracer: engine_cfg.tracer.clone(),
                retry: RetryPolicy::default(),
                faults: faults.clone(),
                wire: Arc::clone(&wire),
                queue_wait_us: 0,
            };
            let stop = Arc::clone(&stop);
            let purge_period = engine_cfg.log_purge_us;
            // Crash-restart schedule for this daemon, consumed in order.
            let windows = faults.crash_windows_for(&site.host);
            daemons.push(
                std::thread::Builder::new()
                    .name(format!("webdis-daemon-{site}"))
                    .spawn(move || {
                        let endpoint = endpoint; // owned by the daemon
                        let mut last_purge = Instant::now();
                        let mut win_idx = 0usize;
                        while !stop.load(Ordering::SeqCst) {
                            // A window whose end has passed respawns the
                            // daemon: fresh volatile state, same socket.
                            while win_idx < windows.len()
                                && epoch.elapsed() >= windows[win_idx].start + windows[win_idx].down
                            {
                                engine.restart();
                                win_idx += 1;
                            }
                            if let Ok((msg, queued)) =
                                endpoint.recv_timeout_queued(Duration::from_millis(20))
                            {
                                let now = epoch.elapsed();
                                let crashed = win_idx < windows.len()
                                    && now >= windows[win_idx].start
                                    && now < windows[win_idx].start + windows[win_idx].down;
                                if crashed {
                                    // The process is dead: the frame is
                                    // read off the socket but never
                                    // processed. Traced as an explained
                                    // drop so trajectory triage never
                                    // reports a false orphan.
                                    let bytes = encode_message(&msg).len() as u32;
                                    net.emit(
                                        &msg,
                                        TrEvent::MessageDropped {
                                            kind: msg.kind().to_string(),
                                            to: net.from.clone(),
                                            bytes,
                                            reason: "crashed".into(),
                                        },
                                    );
                                    continue;
                                }
                                // Inbound queue depth at dequeue: this
                                // message plus whatever is still waiting.
                                let depth = endpoint.pending() as u64 + 1;
                                net.tracer
                                    .gauge_max(&format!("queue_depth.{}", net.from), depth);
                                net.tracer.gauge_max("queue_depth_high_water", depth);
                                net.queue_wait_us = queued.as_micros() as u64;
                                engine.on_message(&mut net, msg);
                                net.queue_wait_us = 0;
                                net.tracer
                                    .gauge_max("log_len_high_water", engine.log_len() as u64);
                            }
                            if let Some(period) = purge_period {
                                if last_purge.elapsed() >= Duration::from_micros(period) {
                                    last_purge = Instant::now();
                                    engine.purge_log(net.now_us().saturating_sub(period));
                                }
                            }
                        }
                        engine
                    })
                    .expect("spawn daemon"),
            );
        }
        // The TCP analogue of the simulator's purge-tick sampling: a
        // wall-clock thread feeds the monitor a registry snapshot every
        // 50 ms so its windows close (and alerts fire/resolve) while the
        // cluster serves traffic. The thread only reads — same workload,
        // monitored or not.
        let sampler = engine_cfg.monitor.clone().map(|monitor| {
            let tracer = engine_cfg.tracer.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("webdis-monitor-sampler".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        if let Some(snapshot) = tracer.registry_snapshot() {
                            monitor.ingest(epoch.elapsed().as_micros() as u64, &snapshot);
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    if let Some(snapshot) = tracer.registry_snapshot() {
                        monitor.finalize(epoch.elapsed().as_micros() as u64, &snapshot);
                    }
                })
                .expect("spawn monitor sampler")
        });
        // Living-web mutator: replays the schedule against the shared
        // store at each event's wall-clock offset from the cluster
        // epoch, so pages change while daemons are mid-query. Every
        // applied event is stamped into the trace as a `WebMutation`
        // from the mutated host, making runs auditable after the fact.
        let mutator = match (&web, schedule) {
            (webdis_web::WebView::Live(live), Some(schedule)) if !schedule.events.is_empty() => {
                let live = Arc::clone(live);
                let stop = Arc::clone(&stop);
                let tracer = engine_cfg.tracer.clone();
                Some(
                    std::thread::Builder::new()
                        .name("webdis-mutator".into())
                        .spawn(move || {
                            for m in &schedule.events {
                                let due = Duration::from_micros(m.at_us);
                                loop {
                                    if stop.load(Ordering::SeqCst) {
                                        return;
                                    }
                                    let elapsed = epoch.elapsed();
                                    if elapsed >= due {
                                        break;
                                    }
                                    // Short slices keep shutdown prompt
                                    // even with far-future events.
                                    std::thread::sleep(
                                        (due - elapsed).min(Duration::from_millis(20)),
                                    );
                                }
                                let applied = live.apply(m);
                                tracer.emit_with(|| TraceRecord {
                                    time_us: epoch.elapsed().as_micros() as u64,
                                    site: applied.host.clone(),
                                    query: None,
                                    hop: None,
                                    event: TrEvent::WebMutation {
                                        op: applied.label.to_string(),
                                        url: m.op.url_string(),
                                        site_version: applied.site_version,
                                    },
                                });
                            }
                        })
                        .expect("spawn mutator"),
                )
            }
            _ => None,
        };
        TcpCluster {
            epoch,
            user_site,
            user_endpoint,
            map,
            stop,
            daemons,
            mutator,
            tracer: engine_cfg.tracer.clone(),
            faults,
            wire,
            exporters,
            sampler,
        }
    }

    /// The address daemons report results to.
    pub fn user_site(&self) -> &SiteAddr {
        &self.user_site
    }

    /// Wall-clock µs since the cluster came up (the time base of every
    /// `TcpNet` handle and of `completed_at_us`).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// A network handle stamped as the user site, for client-side sends.
    pub fn user_net(&self) -> TcpNet {
        TcpNet {
            map: Arc::clone(&self.map),
            epoch: self.epoch,
            from: self.user_site.host.clone(),
            tracer: self.tracer.clone(),
            retry: RetryPolicy::default(),
            faults: self.faults.clone(),
            wire: Arc::clone(&self.wire),
            queue_wait_us: 0,
        }
    }

    /// The cluster-wide per-kind wire meter (messages/bytes sent and
    /// dropped, shared by every daemon and the user-site handle).
    pub fn wire_counters(&self) -> &Arc<WireCounters> {
        &self.wire
    }

    /// The `/metrics` listen address of `site`'s daemon, if that site
    /// exists.
    pub fn metrics_addr(&self, site: &SiteAddr) -> Option<SocketAddr> {
        self.exporters
            .iter()
            .find(|(s, _)| s == site)
            .map(|(_, e)| e.addr())
    }

    /// Every daemon's `/metrics` listen address, in site order.
    pub fn metrics_addrs(&self) -> Vec<(SiteAddr, SocketAddr)> {
        self.exporters
            .iter()
            .map(|(s, e)| (s.clone(), e.addr()))
            .collect()
    }

    /// Receives one message addressed to the user endpoint, or `None` on
    /// timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.user_endpoint.recv_timeout(timeout).ok()
    }

    /// Stops every daemon (and its metrics exporter) and returns their
    /// engines (for final stats).
    pub fn shutdown(self) -> Vec<ServerEngine> {
        self.stop.store(true, Ordering::SeqCst);
        for (_, mut exporter) in self.exporters {
            exporter.stop();
        }
        if let Some(mutator) = self.mutator {
            let _ = mutator.join();
        }
        if let Some(sampler) = self.sampler {
            let _ = sampler.join();
        }
        self.daemons
            .into_iter()
            .filter_map(|d| d.join().ok())
            .collect()
    }
}

/// Runs a DISQL query against `web` with a real query-server daemon per
/// site, all on loopback. Returns when the query completes or `deadline`
/// expires.
pub fn run_query_tcp(
    web: Arc<webdis_web::HostedWeb>,
    disql: &str,
    engine_cfg: EngineConfig,
    deadline: Duration,
) -> Result<TcpOutcome, SimRunError> {
    run_query_tcp_faulty(web, disql, engine_cfg, deadline, TcpFaultPlan::default())
}

/// [`run_query_tcp`] with injected send faults — the TCP analogue of the
/// simulator's drop injection, used by the fault-recovery tests.
pub fn run_query_tcp_faulty(
    web: Arc<webdis_web::HostedWeb>,
    disql: &str,
    engine_cfg: EngineConfig,
    deadline: Duration,
    faults: TcpFaultPlan,
) -> Result<TcpOutcome, SimRunError> {
    let query = parse_disql(disql).map_err(SimRunError::Parse)?;
    let cluster = TcpCluster::start(web, &engine_cfg, faults);
    Ok(drive_single_query(cluster, query, engine_cfg, deadline))
}

/// [`run_query_tcp`] against a shared **living** web: daemons answer
/// from `web`'s current state, and the scheduled mutations (if any) are
/// applied by the cluster's mutator thread at their wall-clock offsets —
/// concurrently with the query when the offsets land mid-flight.
pub fn run_query_tcp_live(
    web: Arc<webdis_web::LiveWeb>,
    schedule: Option<webdis_web::MutationSchedule>,
    disql: &str,
    engine_cfg: EngineConfig,
    deadline: Duration,
) -> Result<TcpOutcome, SimRunError> {
    let query = parse_disql(disql).map_err(SimRunError::Parse)?;
    let cluster = TcpCluster::start_live(web, &engine_cfg, TcpFaultPlan::default(), schedule);
    Ok(drive_single_query(cluster, query, engine_cfg, deadline))
}

fn drive_single_query(
    cluster: TcpCluster,
    query: webdis_disql::WebQuery,
    engine_cfg: EngineConfig,
    deadline: Duration,
) -> TcpOutcome {
    let start = Instant::now();
    // The user-site client runs on this thread.
    let id = QueryId {
        user: "webdis".into(),
        host: cluster.user_site().host.clone(),
        port: cluster.user_site().port,
        query_num: 1,
    };
    let mut user = UserSite::new(id, query, engine_cfg);
    let mut net = cluster.user_net();
    user.start(&mut net);
    let mut ticker = ExpiryTicker::new(user.expiry_policy());
    while !user.complete && start.elapsed() < deadline {
        if let Some(msg) = cluster.recv_timeout(Duration::from_millis(20)) {
            user.on_message(&mut net, msg);
        }
        if let Some(timeout_us) = ticker.due() {
            user.expire_stale(net.now_us(), timeout_us);
        }
    }

    cluster.shutdown();

    TcpOutcome {
        complete: user.complete,
        // `now_us` is µs since `start`, so `completed_at_us` converts
        // directly into this query's own wall-clock completion time.
        elapsed: user
            .completed_at_us
            .map(Duration::from_micros)
            .unwrap_or_else(|| start.elapsed()),
        failed_entries: user.failed_entries.clone(),
        shed_entries: user.shed_entries.clone(),
        dead_link_entries: user.dead_link_entries.clone(),
        why_incomplete: user.why_incomplete(),
        results: user.results,
        trace: user.trace,
    }
}

/// Runs several DISQL queries **concurrently** through one client process
/// over real TCP daemons: the paper's Section 4.3 deployment, where a
/// single listening socket serves all in-flight queries. Returns the
/// per-query outcomes in submission order.
pub fn run_queries_tcp(
    web: Arc<webdis_web::HostedWeb>,
    disqls: &[&str],
    engine_cfg: EngineConfig,
    deadline: Duration,
) -> Result<Vec<TcpOutcome>, SimRunError> {
    // Parse everything up front so errors surface before daemons start.
    for disql in disqls {
        parse_disql(disql).map_err(SimRunError::Parse)?;
    }
    let start = Instant::now();
    let cluster = TcpCluster::start(web, &engine_cfg, TcpFaultPlan::default());

    let expiry = match engine_cfg.completion {
        crate::config::CompletionMode::Cht => engine_cfg.expiry,
        crate::config::CompletionMode::AckChain => None,
    };
    let mut client =
        crate::client::ClientProcess::new("webdis", cluster.user_site().clone(), engine_cfg);
    let mut net = cluster.user_net();
    let mut nums = Vec::new();
    for disql in disqls {
        nums.push(
            client
                .submit_disql(&mut net, disql)
                .expect("validated above"),
        );
    }
    let mut ticker = ExpiryTicker::new(expiry);
    while !client.all_complete() && start.elapsed() < deadline {
        if let Some(msg) = cluster.recv_timeout(Duration::from_millis(20)) {
            client.on_message(&mut net, msg);
        }
        if let Some(timeout_us) = ticker.due() {
            client.expire_stale_all(net.now_us(), timeout_us);
        }
    }

    cluster.shutdown();

    Ok(nums
        .into_iter()
        .map(|num| {
            let user = client.forget(num).expect("submitted query exists");
            TcpOutcome {
                complete: user.complete,
                // Per-query completion time, not the batch wall clock:
                // `completed_at_us` counts µs since the shared epoch.
                elapsed: user
                    .completed_at_us
                    .map(Duration::from_micros)
                    .unwrap_or_else(|| start.elapsed()),
                failed_entries: user.failed_entries.clone(),
                shed_entries: user.shed_entries.clone(),
                dead_link_entries: user.dead_link_entries.clone(),
                why_incomplete: user.why_incomplete(),
                results: user.results,
                trace: user.trace,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdis_web::figures;
    use webdis_web::{HostedWeb, LiveWeb, Mutation, MutationOp, MutationSchedule, PageBuilder};

    fn needle_live_web() -> Arc<LiveWeb> {
        let mut web = HostedWeb::new();
        web.insert_page(
            "http://c.test/",
            PageBuilder::new("Root needle").link("/a.html", "a"),
        );
        web.insert_page("http://c.test/a.html", PageBuilder::new("A needle"));
        Arc::new(LiveWeb::from_hosted(&web))
    }

    const NEEDLE_QUERY: &str = r#"select d.title from document d
        such that "http://c.test/" L* d
        where d.title contains "needle""#;

    fn titles(outcome: &TcpOutcome) -> Vec<String> {
        outcome
            .results
            .values()
            .flatten()
            .map(|(_, row)| format!("{:?}", row.values))
            .collect()
    }

    #[test]
    fn edit_is_visible_over_tcp() {
        // Satellite-1 on the real transport: an edit applied by the
        // mutator thread is served by the daemon's next visit even when
        // an earlier query warmed the footnote-3 cache.
        let web = needle_live_web();
        let cfg = EngineConfig {
            doc_cache_size: 8,
            ..EngineConfig::default()
        };
        let before = run_query_tcp_live(
            Arc::clone(&web),
            None,
            NEEDLE_QUERY,
            cfg.clone(),
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(before.complete);
        assert!(titles(&before).iter().any(|t| t.contains("A needle")));
        web.apply(&Mutation {
            at_us: 0,
            op: MutationOp::EditPage {
                url: Url::parse("http://c.test/a.html").unwrap(),
                token: "needle".into(),
            },
        });
        let after = run_query_tcp_live(
            Arc::clone(&web),
            None,
            NEEDLE_QUERY,
            cfg,
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(after.complete);
        assert!(
            titles(&after).iter().any(|t| t.contains("A needle rev1")),
            "stale title served over TCP after an edit: {:?}",
            titles(&after)
        );
    }

    #[test]
    fn dead_link_terminates_cleanly_over_tcp() {
        // Satellite-2 on the real transport: a clone forwarded to a
        // deleted page ends in an explicit dead-link disposition and the
        // query still completes — no hang, no phantom rows.
        let web = needle_live_web();
        web.apply(&Mutation {
            at_us: 0,
            op: MutationOp::DeletePage {
                url: Url::parse("http://c.test/a.html").unwrap(),
            },
        });
        let outcome = run_query_tcp_live(
            Arc::clone(&web),
            None,
            NEEDLE_QUERY,
            EngineConfig::default(),
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(outcome.complete, "dead link must not hang the query");
        assert_eq!(outcome.dead_link_entries.len(), 1);
        assert_eq!(
            outcome.dead_link_entries[0].0,
            Url::parse("http://c.test/a.html").unwrap()
        );
        let t = titles(&outcome);
        assert!(
            t.iter().all(|row| !row.contains("A needle")),
            "phantom rows from a deleted page: {t:?}"
        );
    }

    #[test]
    fn scheduled_mutation_applies_during_cluster_lifetime() {
        // The mutator thread applies schedule events at their offsets
        // while daemons serve; by shutdown every event has landed and
        // the web's history digest reflects the full schedule.
        let web = needle_live_web();
        let schedule = MutationSchedule {
            events: vec![
                Mutation {
                    at_us: 1_000,
                    op: MutationOp::EditPage {
                        url: Url::parse("http://c.test/a.html").unwrap(),
                        token: "needle".into(),
                    },
                },
                Mutation {
                    at_us: 2_000,
                    op: MutationOp::AddAnchor {
                        url: Url::parse("http://c.test/").unwrap(),
                        href: Url::parse("http://c.test/b.html").unwrap(),
                        label: "b".into(),
                    },
                },
            ],
        };
        let cluster = TcpCluster::start_live(
            Arc::clone(&web),
            &EngineConfig::default(),
            TcpFaultPlan::default(),
            Some(schedule),
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while web.mutations_applied() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        cluster.shutdown();
        assert_eq!(web.mutations_applied(), 2, "schedule fully applied");
        assert_eq!(web.site_version("c.test"), 2);
    }

    #[test]
    fn campus_query_over_real_sockets() {
        let outcome = run_query_tcp(
            Arc::new(figures::campus()),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(outcome.complete, "query must complete over TCP");
        assert_eq!(outcome.results.get(&1).map(Vec::len), Some(3));
    }

    #[test]
    fn concurrent_queries_over_tcp() {
        let web = Arc::new(figures::campus());
        let outcomes = run_queries_tcp(
            Arc::clone(&web),
            &[
                figures::CAMPUS_QUERY,
                figures::EXAMPLE_QUERY_1,
                figures::CAMPUS_QUERY,
            ],
            EngineConfig::default(),
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(outcomes.len(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert!(o.complete, "query {i} must complete");
        }
        // Both campus submissions agree with each other.
        assert_eq!(
            outcomes[0].results.get(&1).map(Vec::len),
            outcomes[2].results.get(&1).map(Vec::len)
        );
        assert_eq!(outcomes[0].results.get(&1).map(Vec::len), Some(3));
        // The link-extraction query found the DSL site's global links.
        assert!(outcomes[1].results.get(&0).map(Vec::len).unwrap_or(0) >= 2);
    }

    #[test]
    fn batch_outcomes_report_per_query_elapsed() {
        // Regression: every outcome used to be stamped with the whole
        // batch's wall clock. The single-site link query finishes long
        // before the multi-hop campus query; its elapsed must be its own.
        let web = Arc::new(figures::campus());
        let outcomes = run_queries_tcp(
            Arc::clone(&web),
            &[figures::CAMPUS_QUERY, figures::EXAMPLE_QUERY_1],
            EngineConfig::default(),
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(outcomes[0].complete && outcomes[1].complete);
        assert!(
            outcomes[1].elapsed < outcomes[0].elapsed,
            "single-site query ({:?}) must complete before the campus query ({:?})",
            outcomes[1].elapsed,
            outcomes[0].elapsed,
        );
    }

    #[test]
    fn injected_query_drop_recovers_via_expiry() {
        // Drop the first query clone forwarded by a daemon (ordinal 1;
        // ordinal 0 is the user's initial dispatch). The lost subtree
        // never reports, so only the expiry sweep can conclude the query
        // — with the lost nodes in failed_entries and partial results.
        let web = Arc::new(figures::campus());
        let baseline = run_query_tcp(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(baseline.complete && baseline.failed_entries.is_empty());
        let baseline_rows: usize = baseline.results.values().map(Vec::len).sum();

        let cfg = EngineConfig {
            expiry: Some(crate::config::ExpiryPolicy::with_timeout(400_000)),
            ..EngineConfig::default()
        };
        let faults = TcpFaultPlan::drop_queries(1, 1);
        let outcome = run_query_tcp_faulty(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            cfg,
            Duration::from_secs(30),
            faults.clone(),
        )
        .unwrap();
        assert_eq!(faults.dropped_so_far(), 1);
        assert!(outcome.complete, "expiry must conclude the query");
        assert!(
            !outcome.failed_entries.is_empty(),
            "the dropped clone's nodes must be written off"
        );
        let why = outcome.why_incomplete.expect("expired run is diagnosed");
        assert!(why.contains("expiry"), "{why}");
        let rows: usize = outcome.results.values().map(Vec::len).sum();
        assert!(
            rows < baseline_rows,
            "partial results expected ({rows} vs baseline {baseline_rows})"
        );
        assert!(rows > 0, "the report preceding the forwards still lands");
    }

    #[test]
    fn corrupted_query_frame_recovers_via_expiry() {
        // Corrupt the first daemon-forwarded clone (ordinal 1; ordinal 0
        // is the user's dispatch): the mangled frame goes over the real
        // socket and dies in the receiver's decoder, so the loss runs
        // the wire-error path end to end. Expiry concludes the query
        // with partial results, exactly like a silent drop.
        let web = Arc::new(figures::campus());
        let baseline = run_query_tcp(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            Duration::from_secs(30),
        )
        .unwrap();
        let baseline_rows: usize = baseline.results.values().map(Vec::len).sum();

        let cfg = EngineConfig {
            expiry: Some(crate::config::ExpiryPolicy::with_timeout(400_000)),
            ..EngineConfig::default()
        };
        let faults = TcpFaultPlan::default().with_query_corruption(1, 1);
        let outcome = run_query_tcp_faulty(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            cfg,
            Duration::from_secs(30),
            faults.clone(),
        )
        .unwrap();
        assert_eq!(faults.corrupted_so_far(), 1);
        assert!(outcome.complete, "expiry must conclude the query");
        assert!(
            !outcome.failed_entries.is_empty(),
            "the corrupted clone's nodes must be written off"
        );
        let rows: usize = outcome.results.values().map(Vec::len).sum();
        assert!(rows < baseline_rows, "{rows} vs baseline {baseline_rows}");
    }

    #[test]
    fn duplicated_reports_do_not_double_rows() {
        // Deliver every result report twice: the user site's
        // (origin, seq) dedupe must keep the row set identical to the
        // fault-free run and completion exact.
        let web = Arc::new(figures::campus());
        let baseline = run_query_tcp(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            Duration::from_secs(30),
        )
        .unwrap();
        let faults = TcpFaultPlan::default().with_report_dups(0, usize::MAX / 2);
        let outcome = run_query_tcp_faulty(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            Duration::from_secs(30),
            faults.clone(),
        )
        .unwrap();
        assert!(faults.duplicated_so_far() > 0, "reports were duplicated");
        assert!(outcome.complete, "dedupe must not wedge completion");
        let rows = |o: &TcpOutcome| -> std::collections::BTreeSet<_> {
            o.results
                .iter()
                .flat_map(|(s, rows)| {
                    rows.iter().map(move |(n, r)| {
                        (
                            *s,
                            n.to_string(),
                            r.values.iter().map(|v| v.render()).collect::<Vec<_>>(),
                        )
                    })
                })
                .collect()
        };
        assert_eq!(rows(&outcome), rows(&baseline));
        assert_eq!(
            outcome.results.values().map(Vec::len).sum::<usize>(),
            baseline.results.values().map(Vec::len).sum::<usize>(),
            "no row arrived twice"
        );
    }

    #[test]
    fn crashed_daemon_window_recovers_via_expiry() {
        // The DSL lab's daemon is dead for the run's first 300ms — every
        // clone addressed to it in that window is discarded, and the
        // respawned engine comes back empty. Expiry writes off the lost
        // subtree; the rest of the campus still answers.
        let web = Arc::new(figures::campus());
        let cfg = EngineConfig {
            expiry: Some(crate::config::ExpiryPolicy::with_timeout(500_000)),
            ..EngineConfig::default()
        };
        let faults = TcpFaultPlan::default().with_crash_window(
            "dsl.serc.iisc.ernet.in",
            Duration::from_millis(0),
            Duration::from_millis(300),
        );
        let outcome = run_query_tcp_faulty(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            cfg,
            Duration::from_secs(30),
            faults,
        )
        .unwrap();
        assert!(outcome.complete, "expiry must conclude the query");
        assert!(
            !outcome.failed_entries.is_empty(),
            "clones swallowed by the dead daemon must be written off"
        );
        assert!(
            outcome
                .failed_entries
                .iter()
                .all(|(node, _)| node.to_string().contains("dsl.serc")),
            "only the crashed site's nodes expire: {:?}",
            outcome.failed_entries
        );
    }

    #[test]
    fn live_metrics_scrape_covers_every_registered_metric() {
        use std::io::{Read, Write};

        let web = Arc::new(figures::campus());
        let (collector, tracer) = webdis_trace::TraceHandle::collecting(65_536);
        let cfg = EngineConfig {
            tracer,
            ..EngineConfig::default()
        };
        let cluster = TcpCluster::start(Arc::clone(&web), &cfg, TcpFaultPlan::default());

        let id = QueryId {
            user: "webdis".into(),
            host: cluster.user_site().host.clone(),
            port: cluster.user_site().port,
            query_num: 1,
        };
        let query = parse_disql(figures::CAMPUS_QUERY).unwrap();
        let mut user = UserSite::new(id, query, cfg);
        let mut net = cluster.user_net();
        user.start(&mut net);
        let start = Instant::now();
        while !user.complete && start.elapsed() < Duration::from_secs(30) {
            if let Some(msg) = cluster.recv_timeout(Duration::from_millis(20)) {
                user.on_message(&mut net, msg);
            }
        }
        assert!(user.complete, "query must complete over TCP");

        // Raw-socket fetch from a daemon that is still up and serving.
        let scrape = |path: &str| -> String {
            let (_, addr) = cluster.metrics_addrs()[0].clone();
            let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics");
            write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
            let mut body = String::new();
            stream.read_to_string(&mut body).expect("read response");
            body
        };
        let response = scrape("/metrics");
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");

        // Every counter, gauge, and histogram the run registered must
        // appear in the exposition, in sanitized form.
        let snap = collector.registry().snapshot();
        for (name, _) in snap.counters() {
            let metric = webdis_trace::expo::metric_name(name);
            assert!(
                response.contains(&format!("# TYPE {metric} counter")),
                "missing counter {name}"
            );
        }
        for (name, _) in snap.gauges() {
            let metric = webdis_trace::expo::metric_name(name);
            assert!(
                response.contains(&format!("# TYPE {metric} gauge")),
                "missing gauge {name}"
            );
        }
        for (name, _) in snap.histograms() {
            let metric = webdis_trace::expo::metric_name(name);
            assert!(
                response.contains(&format!("# TYPE {metric} histogram")),
                "missing histogram {name}"
            );
            assert!(
                response.contains(&format!("{metric}_bucket{{le=\"+Inf\"}}")),
                "missing +Inf bucket for {name}"
            );
        }
        // The overlays: cluster-wide wire counters and the up gauge.
        assert!(response.contains("webdis_net_query_msgs"), "{response}");
        assert!(response.contains("webdis_net_query_bytes"));
        assert!(response.contains("webdis_up 1"));
        // The stage histograms saw real observations.
        assert!(snap
            .histograms()
            .any(|(n, h)| n == "stage_us.eval" && h.count > 0));
        // Unknown paths 404.
        assert!(scrape("/nope").starts_with("HTTP/1.0 404"));

        cluster.shutdown();
    }

    #[test]
    fn admin_socket_serves_live_status_and_resets_high_water() {
        use std::io::{Read, Write};

        let web = Arc::new(figures::campus());
        let (_collector, tracer) = webdis_trace::TraceHandle::collecting(65_536);
        let monitor = crate::MonitorHandle::with_defaults(tracer.clone());
        let cfg = EngineConfig {
            tracer,
            monitor: Some(monitor),
            ..EngineConfig::default()
        };
        let cluster = TcpCluster::start(Arc::clone(&web), &cfg, TcpFaultPlan::default());

        // Submit through the client process so the monitor's admit hook
        // runs (it owns query-number assignment).
        let mut client =
            crate::ClientProcess::new("webdis", cluster.user_site().clone(), cfg.clone());
        let mut net = cluster.user_net();
        client
            .submit_disql(&mut net, figures::CAMPUS_QUERY)
            .expect("valid query");
        let start = Instant::now();
        while !client.all_complete() && start.elapsed() < Duration::from_secs(30) {
            if let Some(msg) = cluster.recv_timeout(Duration::from_millis(20)) {
                client.on_message(&mut net, msg);
            }
        }
        assert!(client.all_complete(), "query must complete over TCP");

        let scrape = |path: &str| -> String {
            let (_, addr) = cluster.metrics_addrs()[0].clone();
            let mut stream = std::net::TcpStream::connect(addr).expect("connect admin socket");
            write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
            let mut body = String::new();
            stream.read_to_string(&mut body).expect("read response");
            body
        };

        // /status serves the monitor snapshot: the query was admitted
        // and, once complete, retired out of the in-flight table.
        let response = scrape("/status");
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        let json = response.split("\r\n\r\n").nth(1).expect("body");
        let status = crate::StatusSnapshot::from_json(json).expect("parse status");
        assert_eq!(status.admitted, 1, "{json}");
        assert_eq!(status.retired, 1, "{json}");
        assert!(status.inflight.is_empty(), "{json}");

        // High-water marks survive scrapes and only an explicit
        // /reset_high_water re-arms them.
        let marked = scrape("/metrics");
        assert!(
            marked.contains("webdis_queue_depth_high_water ")
                && !marked.contains("webdis_queue_depth_high_water 0\n"),
            "daemon processing must have raised the queue mark: {marked}"
        );
        let again = scrape("/metrics");
        assert!(
            !again.contains("webdis_queue_depth_high_water 0\n"),
            "a scrape must not reset the mark"
        );
        assert!(scrape("/reset_high_water").starts_with("HTTP/1.0 200"));
        let cleared = scrape("/metrics");
        assert!(
            cleared.contains("webdis_queue_depth_high_water 0\n"),
            "reset must zero the mark: {cleared}"
        );

        cluster.shutdown();
    }

    #[test]
    fn tcp_and_sim_agree() {
        let web = Arc::new(figures::figure1());
        let tcp = run_query_tcp(
            Arc::clone(&web),
            figures::FIG_QUERY,
            EngineConfig::default(),
            Duration::from_secs(30),
        )
        .unwrap();
        let sim = crate::run_query_sim(
            web,
            figures::FIG_QUERY,
            EngineConfig::default(),
            webdis_sim::SimConfig::default(),
        )
        .unwrap();
        assert!(tcp.complete && sim.complete);
        let tcp_rows: std::collections::BTreeSet<_> = tcp
            .results
            .iter()
            .flat_map(|(s, rows)| {
                rows.iter().map(move |(n, r)| {
                    (
                        *s,
                        n.to_string(),
                        r.values.iter().map(|v| v.render()).collect::<Vec<_>>(),
                    )
                })
            })
            .collect();
        assert_eq!(tcp_rows, sim.result_set());
    }
}
