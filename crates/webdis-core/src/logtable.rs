//! The node-query log table (Section 3.1.1).
//!
//! Each query server remembers, per `(query id, node URL)`, the states in
//! which clones have already been processed there. A new arrival is
//! compared against the logged states:
//!
//! * identical state, or `A*m·B` with a logged `A*n·B` and `m ≤ n` —
//!   every path the arrival could take was already covered: **drop**;
//! * `A*m·B` with a logged `A*n·B` and `m > n` — the arrival covers
//!   strictly more: the logged entry is **replaced** with the new state
//!   and the clone proceeds with the rewritten PRE `A·A*(m-1)·B`, which
//!   forces this node to act as a PureRouter (the multiple-rewrite rule);
//! * otherwise the state is logged and the clone is processed normally.
//!
//! [`LogMode::General`] additionally drops arrivals whose PRE *language*
//! is contained in a logged one (NFA product check) even when the
//! syntactic rule cannot relate them — an extension measured by the
//! ablation benches.

use std::collections::HashMap;

use webdis_model::Url;
use webdis_net::{CloneState, QueryId};
use webdis_pre::{check_subsumption, contains, Pre, Subsumption};

use crate::config::LogMode;

/// What the server should do with an arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOutcome {
    /// Process the clone with `pre` as the effective remaining PRE.
    /// `rewritten` is true when the superset rule replaced the PRE.
    Process {
        /// The (possibly rewritten) PRE to continue with.
        pre: Pre,
        /// True when the multiple-rewrite was applied.
        rewritten: bool,
    },
    /// Equivalent work was already done here: drop the clone.
    Drop {
        /// True when the matching log record is *hidden* from the user
        /// site's CHT — it was created by a same-node stage continuation
        /// rather than an announced forward. The user cannot mirror such
        /// a drop, so the server must report it explicitly even in the
        /// paper's silent-drop CHT mode.
        hidden: bool,
        /// True when the arrival state is *identical* to the logged one.
        /// Only identical drops may be silent: the identity relation is
        /// symmetric, so the user site's skip rule reaches the same
        /// verdict regardless of merge order. Proper-subsumption drops
        /// are order-sensitive (the server's verdict depends on which
        /// clone arrived first) and must be reported.
        exact: bool,
    },
}

/// One logged record.
#[derive(Debug, Clone)]
struct LogRow {
    state: CloneState,
    logged_at_us: u64,
    /// True when the state was announced to the user site's CHT (a
    /// forwarded arrival); false for same-node stage continuations, which
    /// only the server knows about.
    announced: bool,
}

/// The per-server log table.
#[derive(Debug, Default)]
pub struct LogTable {
    rows: HashMap<(QueryId, Url), Vec<LogRow>>,
}

impl LogTable {
    /// An empty table.
    pub fn new() -> LogTable {
        LogTable::default()
    }

    /// Number of logged records (across all queries and nodes).
    pub fn len(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Checks an arrival against the log and records it. `now_us` stamps
    /// the record for later purging; `announced` says whether the state
    /// is visible to the user site's CHT (false for same-node stage
    /// continuations).
    pub fn check(
        &mut self,
        mode: LogMode,
        id: &QueryId,
        node: &Url,
        state: &CloneState,
        announced: bool,
        now_us: u64,
    ) -> LogOutcome {
        if mode == LogMode::Off {
            return LogOutcome::Process {
                pre: state.rem_pre.clone(),
                rewritten: false,
            };
        }
        let rows = self.rows.entry((id.clone(), node.clone())).or_default();
        for row in rows.iter_mut() {
            if row.state.num_q != state.num_q {
                continue;
            }
            match check_subsumption(&state.rem_pre, &row.state.rem_pre) {
                Subsumption::Identical => {
                    return LogOutcome::Drop {
                        hidden: !row.announced,
                        exact: true,
                    };
                }
                Subsumption::SubsumedByExisting => {
                    return LogOutcome::Drop {
                        hidden: !row.announced,
                        exact: false,
                    };
                }
                Subsumption::SupersetOfExisting { rewritten } => {
                    // Replace the existing entry with the wider state
                    // (Section 3.1.1, step 1 of the m > n case). The
                    // replacement's visibility is the new state's.
                    row.state = state.clone();
                    row.logged_at_us = now_us;
                    row.announced = announced;
                    return LogOutcome::Process {
                        pre: rewritten,
                        rewritten: true,
                    };
                }
                Subsumption::Unrelated => {
                    if mode == LogMode::General && contains(&state.rem_pre, &row.state.rem_pre) {
                        return LogOutcome::Drop {
                            hidden: !row.announced,
                            exact: false,
                        };
                    }
                }
            }
        }
        rows.push(LogRow {
            state: state.clone(),
            logged_at_us: now_us,
            announced,
        });
        LogOutcome::Process {
            pre: state.rem_pre.clone(),
            rewritten: false,
        }
    }

    /// Purges records logged before `before_us` (Section 3.1.1: "old
    /// entries in the table are periodically purged"). Over-eager purging
    /// costs recomputation, never correctness.
    pub fn purge(&mut self, before_us: u64) -> usize {
        let mut removed = 0;
        self.rows.retain(|_, rows| {
            let before = rows.len();
            rows.retain(|r| r.logged_at_us >= before_us);
            removed += before - rows.len();
            !rows.is_empty()
        });
        removed
    }

    /// Drops every record of one query (used after passive termination).
    pub fn purge_query(&mut self, id: &QueryId) {
        self.rows.retain(|(qid, _), _| qid != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qid() -> QueryId {
        QueryId {
            user: "u".into(),
            host: "h".into(),
            port: 1,
            query_num: 1,
        }
    }

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn state(num_q: u32, pre: &str) -> CloneState {
        CloneState {
            num_q,
            rem_pre: webdis_pre::parse(pre).unwrap(),
        }
    }

    #[test]
    fn first_arrival_processes_and_logs() {
        let mut t = LogTable::new();
        let out = t.check(
            LogMode::Paper,
            &qid(),
            &url("http://n/"),
            &state(2, "L*2·G"),
            true,
            0,
        );
        assert!(matches!(
            out,
            LogOutcome::Process {
                rewritten: false,
                ..
            }
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn identical_arrival_dropped() {
        let mut t = LogTable::new();
        let n = url("http://n/");
        t.check(LogMode::Paper, &qid(), &n, &state(2, "L*2·G"), true, 0);
        let out = t.check(LogMode::Paper, &qid(), &n, &state(2, "L*2·G"), true, 1);
        assert_eq!(
            out,
            LogOutcome::Drop {
                hidden: false,
                exact: true
            }
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn subsumed_arrival_dropped() {
        let mut t = LogTable::new();
        let n = url("http://n/");
        t.check(LogMode::Paper, &qid(), &n, &state(2, "L*2·G"), true, 0);
        assert_eq!(
            t.check(LogMode::Paper, &qid(), &n, &state(2, "L*1·G"), true, 1),
            LogOutcome::Drop {
                hidden: false,
                exact: false
            }
        );
    }

    #[test]
    fn superset_arrival_rewrites_and_replaces() {
        let mut t = LogTable::new();
        let n = url("http://n/");
        t.check(LogMode::Paper, &qid(), &n, &state(2, "L*2·G"), true, 0);
        let out = t.check(LogMode::Paper, &qid(), &n, &state(2, "L*4·G"), true, 1);
        match out {
            LogOutcome::Process {
                pre,
                rewritten: true,
            } => {
                assert_eq!(pre, webdis_pre::parse("L·L*3·G").unwrap());
            }
            other => panic!("expected rewrite, got {other:?}"),
        }
        // The log now holds the wider state: L*3·G is dropped.
        assert_eq!(
            t.check(LogMode::Paper, &qid(), &n, &state(2, "L*3·G"), true, 2),
            LogOutcome::Drop {
                hidden: false,
                exact: false
            }
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_num_q_is_independent() {
        let mut t = LogTable::new();
        let n = url("http://n/");
        t.check(LogMode::Paper, &qid(), &n, &state(2, "N"), true, 0);
        let out = t.check(LogMode::Paper, &qid(), &n, &state(1, "N"), true, 1);
        assert!(matches!(out, LogOutcome::Process { .. }));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn different_node_or_query_is_independent() {
        let mut t = LogTable::new();
        t.check(
            LogMode::Paper,
            &qid(),
            &url("http://a/"),
            &state(1, "N"),
            true,
            0,
        );
        let out = t.check(
            LogMode::Paper,
            &qid(),
            &url("http://b/"),
            &state(1, "N"),
            true,
            0,
        );
        assert!(matches!(out, LogOutcome::Process { .. }));
        let other = QueryId {
            query_num: 2,
            ..qid()
        };
        let out = t.check(
            LogMode::Paper,
            &other,
            &url("http://a/"),
            &state(1, "N"),
            true,
            0,
        );
        assert!(matches!(out, LogOutcome::Process { .. }));
    }

    #[test]
    fn off_mode_never_drops_or_logs() {
        let mut t = LogTable::new();
        let n = url("http://n/");
        for _ in 0..3 {
            let out = t.check(LogMode::Off, &qid(), &n, &state(1, "N"), true, 0);
            assert!(matches!(out, LogOutcome::Process { .. }));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn general_mode_drops_contained_languages() {
        let mut t = LogTable::new();
        let n = url("http://n/");
        // L·L* logged; L·L·L* is contained but syntactically unrelated.
        t.check(LogMode::General, &qid(), &n, &state(1, "L·L*"), true, 0);
        assert_eq!(
            t.check(LogMode::General, &qid(), &n, &state(1, "L·L·L*"), true, 1),
            LogOutcome::Drop {
                hidden: false,
                exact: false
            }
        );
        // Paper mode cannot relate these shapes.
        let mut t2 = LogTable::new();
        t2.check(LogMode::Paper, &qid(), &n, &state(1, "L·L*"), true, 0);
        assert!(matches!(
            t2.check(LogMode::Paper, &qid(), &n, &state(1, "L·L·L*"), true, 1),
            LogOutcome::Process { .. }
        ));
    }

    #[test]
    fn purge_removes_old_entries_only() {
        let mut t = LogTable::new();
        let n = url("http://n/");
        t.check(LogMode::Paper, &qid(), &n, &state(2, "N"), true, 10);
        t.check(LogMode::Paper, &qid(), &n, &state(1, "N"), true, 100);
        assert_eq!(t.purge(50), 1);
        assert_eq!(t.len(), 1);
        // The purged state would be recomputed (correctness unaffected).
        assert!(matches!(
            t.check(LogMode::Paper, &qid(), &n, &state(2, "N"), true, 200),
            LogOutcome::Process { .. }
        ));
    }

    #[test]
    fn purge_query_clears_one_query() {
        let mut t = LogTable::new();
        let other = QueryId {
            query_num: 2,
            ..qid()
        };
        t.check(
            LogMode::Paper,
            &qid(),
            &url("http://a/"),
            &state(1, "N"),
            true,
            0,
        );
        t.check(
            LogMode::Paper,
            &other,
            &url("http://a/"),
            &state(1, "N"),
            true,
            0,
        );
        t.purge_query(&qid());
        assert_eq!(t.len(), 1);
    }
}
