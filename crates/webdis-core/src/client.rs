//! The user-site **client process** (Section 4.3): one result endpoint,
//! many concurrent queries.
//!
//! The paper's QueryID carries `(user, IP, port, query number)` precisely
//! so one listening socket can serve several in-flight web-queries and
//! route results "into a single file" per query. [`ClientProcess`] owns
//! the per-query [`UserSite`]s, assigns query numbers, and dispatches
//! incoming reports by id. Query servers already isolate queries by id in
//! their log tables, so concurrent queries never interfere — covered by
//! `tests/multi_query.rs`.

use std::collections::{BTreeMap, VecDeque};

use webdis_disql::{parse_disql, DisqlError, WebQuery};
use webdis_model::SiteAddr;
use webdis_net::{Message, QueryId};
use webdis_sim::{Actor, Ctx, SimEvent};

use crate::config::EngineConfig;
use crate::network::Network;
use crate::simrun::CtxNet;
use crate::user::UserSite;

/// A multi-query user-site client.
pub struct ClientProcess {
    user: String,
    addr: SiteAddr,
    config: EngineConfig,
    next_query_num: u64,
    queries: BTreeMap<u64, UserSite>,
}

impl ClientProcess {
    /// A client for `user`, receiving results at `addr`.
    pub fn new(user: &str, addr: SiteAddr, config: EngineConfig) -> ClientProcess {
        ClientProcess {
            user: user.to_owned(),
            addr,
            config,
            next_query_num: 1,
            queries: BTreeMap::new(),
        }
    }

    /// Parses and submits a DISQL query; returns its query number.
    ///
    /// The user site's only pipeline stage is the DISQL parse itself, so
    /// the stage-span record it stamps carries `parse_us` alone (every
    /// other stage zero) under hop `None`.
    pub fn submit_disql(&mut self, net: &mut dyn Network, disql: &str) -> Result<u64, DisqlError> {
        let parse_t0 = net.now_us();
        let query = parse_disql(disql)?;
        let parse_us = net.now_us().saturating_sub(parse_t0);
        let query_num = self.submit(net, query);
        self.config.tracer.emit_with(|| webdis_trace::TraceRecord {
            time_us: net.now_us(),
            site: self.addr.host.clone(),
            query: Some(QueryId {
                user: self.user.clone(),
                host: self.addr.host.clone(),
                port: self.addr.port,
                query_num,
            }),
            hop: None,
            event: webdis_trace::TraceEvent::StageSpans {
                queue_us: 0,
                parse_us,
                log_us: 0,
                cache_us: 0,
                eval_us: 0,
                eval_probe_us: 0,
                eval_scan_us: 0,
                build_us: 0,
                forward_us: 0,
            },
        });
        Ok(query_num)
    }

    /// Submits an already-parsed web-query; returns its query number.
    pub fn submit(&mut self, net: &mut dyn Network, query: WebQuery) -> u64 {
        let query_num = self.next_query_num;
        self.next_query_num += 1;
        let id = QueryId {
            user: self.user.clone(),
            host: self.addr.host.clone(),
            port: self.addr.port,
            query_num,
        };
        if let Some(monitor) = &self.config.monitor {
            monitor.admit(&id, net.now_us());
        }
        let mut site = UserSite::new(id, query, self.config.clone());
        site.start(net);
        self.queries.insert(query_num, site);
        query_num
    }

    /// Routes an incoming message (result report or completion ack) to
    /// the owning query.
    pub fn on_message(&mut self, net: &mut dyn Network, msg: Message) {
        let id = match &msg {
            Message::Report(report) => &report.id,
            Message::Ack(ack) => &ack.id,
            _ => return,
        };
        if id.user != self.user || id.host != self.addr.host || id.port != self.addr.port {
            return; // not ours at all
        }
        let query_num = id.query_num;
        if let Some(site) = self.queries.get_mut(&query_num) {
            site.on_message(net, msg);
        }
    }

    /// The state of one query, if it exists.
    pub fn query(&self, query_num: u64) -> Option<&UserSite> {
        self.queries.get(&query_num)
    }

    /// Mutable access (e.g. to call `expire_stale`).
    pub fn query_mut(&mut self, query_num: u64) -> Option<&mut UserSite> {
        self.queries.get_mut(&query_num)
    }

    /// Numbers of all submitted queries.
    pub fn query_nums(&self) -> Vec<u64> {
        self.queries.keys().copied().collect()
    }

    /// True when every submitted query has completed.
    pub fn all_complete(&self) -> bool {
        self.queries.values().all(|q| q.complete)
    }

    /// Discards a finished (or cancelled) query's state.
    pub fn forget(&mut self, query_num: u64) -> Option<UserSite> {
        self.queries.remove(&query_num)
    }

    /// The engine configuration this client runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the Section-7.1 expiry sweep over every in-flight query.
    /// Returns the number of entries expired across all of them.
    pub fn expire_stale_all(&mut self, now_us: u64, timeout_us: u64) -> usize {
        self.queries
            .values_mut()
            .filter(|q| !q.complete)
            .map(|q| q.expire_stale(now_us, timeout_us))
            .sum()
    }
}

/// The client process bound to the simulator. Submissions happen from the
/// harness via [`webdis_sim::SimNet::actor_mut`]; the Start event is
/// unused.
pub struct SimClient {
    /// The wrapped client.
    pub client: ClientProcess,
    /// Queries (DISQL text) to submit on the Start event.
    pub submit_on_start: Vec<String>,
}

/// Timer token for the client's periodic expiry sweep (distinct from the
/// single-query `SimUser`'s only by ownership — tokens are per-actor).
const EXPIRY_TIMER_TOKEN: u64 = 1;

impl SimClient {
    fn arm_expiry(&self, ctx: &mut Ctx<'_>) {
        if self.client.all_complete() {
            return;
        }
        if let (Some(policy), crate::config::CompletionMode::Cht) =
            (self.client.config().expiry, self.client.config().completion)
        {
            ctx.schedule_timer(policy.period_us, EXPIRY_TIMER_TOKEN);
        }
    }
}

impl Actor for SimClient {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: SimEvent) {
        match event {
            SimEvent::Start => {
                for disql in std::mem::take(&mut self.submit_on_start) {
                    self.client
                        .submit_disql(&mut CtxNet(ctx), &disql)
                        .expect("harness submits valid DISQL");
                }
                self.arm_expiry(ctx);
            }
            SimEvent::Net(msg) => self.client.on_message(&mut CtxNet(ctx), msg),
            SimEvent::Timer(EXPIRY_TIMER_TOKEN) => {
                if let Some(policy) = self.client.config().expiry {
                    let timeout_us = policy.timeout_us;
                    self.client.expire_stale_all(ctx.now_us(), timeout_us);
                }
                self.arm_expiry(ctx);
            }
            SimEvent::Timer(_) => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One planned query submission for a [`ScheduledClient`].
pub struct ScheduledSubmission {
    /// Virtual submission time, µs since simulation start.
    pub at_us: u64,
    /// The (already parsed) query to submit.
    pub query: WebQuery,
}

/// A client-process actor whose submissions happen at scheduled virtual
/// times — the open-loop arrival process of the `webdis-load` workload
/// engine. Arrivals are timer-driven, so many such actors (one per
/// simulated user site) interleave deterministically in one event loop.
pub struct ScheduledClient {
    /// The wrapped multi-query client.
    pub client: ClientProcess,
    /// Remaining submissions, earliest first.
    schedule: VecDeque<ScheduledSubmission>,
    /// Virtual submission time per assigned query number.
    pub submitted_at: BTreeMap<u64, u64>,
    expiry_armed: bool,
}

/// Timer token for the scheduled client's next submission.
const SUBMIT_TIMER_TOKEN: u64 = 2;

impl ScheduledClient {
    /// A scheduled client over `client`; `schedule` need not be sorted.
    pub fn new(client: ClientProcess, mut schedule: Vec<ScheduledSubmission>) -> ScheduledClient {
        schedule.sort_by_key(|s| s.at_us);
        ScheduledClient {
            client,
            schedule: schedule.into(),
            submitted_at: BTreeMap::new(),
            expiry_armed: false,
        }
    }

    /// True when every planned query has been submitted and completed.
    pub fn done(&self) -> bool {
        self.schedule.is_empty() && self.client.all_complete()
    }

    fn submit_due(&mut self, ctx: &mut Ctx<'_>) {
        while self
            .schedule
            .front()
            .is_some_and(|s| s.at_us <= ctx.now_us())
        {
            let s = self.schedule.pop_front().expect("front checked");
            let num = self.client.submit(&mut CtxNet(ctx), s.query);
            self.submitted_at.insert(num, ctx.now_us());
        }
        if let Some(next) = self.schedule.front() {
            ctx.schedule_timer(next.at_us.saturating_sub(ctx.now_us()), SUBMIT_TIMER_TOKEN);
        }
    }

    /// Arms one expiry sweep unless one is already pending (submissions
    /// and sweeps both re-arm; the flag keeps the chains from
    /// multiplying).
    fn arm_expiry(&mut self, ctx: &mut Ctx<'_>) {
        if self.expiry_armed || self.client.all_complete() {
            return;
        }
        if let (Some(policy), crate::config::CompletionMode::Cht) =
            (self.client.config().expiry, self.client.config().completion)
        {
            ctx.schedule_timer(policy.period_us, EXPIRY_TIMER_TOKEN);
            self.expiry_armed = true;
        }
    }
}

impl Actor for ScheduledClient {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: SimEvent) {
        match event {
            SimEvent::Start | SimEvent::Timer(SUBMIT_TIMER_TOKEN) => {
                self.submit_due(ctx);
                self.arm_expiry(ctx);
            }
            SimEvent::Net(msg) => self.client.on_message(&mut CtxNet(ctx), msg),
            SimEvent::Timer(EXPIRY_TIMER_TOKEN) => {
                self.expiry_armed = false;
                if let Some(policy) = self.client.config().expiry {
                    let timeout_us = policy.timeout_us;
                    self.client.expire_stale_all(ctx.now_us(), timeout_us);
                }
                self.arm_expiry(ctx);
            }
            SimEvent::Timer(_) => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RecordingNetwork;

    fn addr() -> SiteAddr {
        SiteAddr {
            host: "user.test".into(),
            port: 9900,
        }
    }

    #[test]
    fn assigns_sequential_query_numbers() {
        let mut client = ClientProcess::new("u", addr(), EngineConfig::default());
        let mut net = RecordingNetwork::default();
        let q = r#"select d.url from document d such that "http://a.test/" L* d"#;
        let n1 = client.submit_disql(&mut net, q).unwrap();
        let n2 = client.submit_disql(&mut net, q).unwrap();
        assert_eq!((n1, n2), (1, 2));
        assert_eq!(client.query_nums(), vec![1, 2]);
        assert!(!client.all_complete());
        // Two clones dispatched, one per query, with distinct ids.
        let ids: Vec<u64> = net
            .sent
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Report(_)
                | Message::Ack(_)
                | Message::Fetch(_)
                | Message::FetchReply(_) => None,
                Message::Query(c) => Some(c.id.query_num),
            })
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn rejects_bad_disql() {
        let mut client = ClientProcess::new("u", addr(), EngineConfig::default());
        let mut net = RecordingNetwork::default();
        assert!(client.submit_disql(&mut net, "select nonsense").is_err());
        assert!(client.query_nums().is_empty());
    }

    #[test]
    fn routes_by_query_number_and_identity() {
        let mut client = ClientProcess::new("u", addr(), EngineConfig::default());
        let mut net = RecordingNetwork::default();
        let q = r#"select d.url from document d such that "http://a.test/" L* d"#;
        let n1 = client.submit_disql(&mut net, q).unwrap();
        // A report for someone else's query (different user) is ignored.
        let foreign = webdis_net::ResultReport {
            id: QueryId {
                user: "other".into(),
                host: "user.test".into(),
                port: 9900,
                query_num: n1,
            },
            origin: "a.test".into(),
            seq: 1,
            reports: vec![],
        };
        client.on_message(&mut net, Message::Report(foreign));
        assert!(client.query(n1).unwrap().trace.is_empty());
        // A report with an unknown query number is ignored too.
        let unknown = webdis_net::ResultReport {
            id: QueryId {
                user: "u".into(),
                host: "user.test".into(),
                port: 9900,
                query_num: 42,
            },
            origin: "a.test".into(),
            seq: 2,
            reports: vec![],
        };
        client.on_message(&mut net, Message::Report(unknown));
    }

    #[test]
    fn forget_removes_state() {
        let mut client = ClientProcess::new("u", addr(), EngineConfig::default());
        let mut net = RecordingNetwork::default();
        let q = r#"select d.url from document d such that "http://a.test/" L* d"#;
        let n = client.submit_disql(&mut net, q).unwrap();
        assert!(client.forget(n).is_some());
        assert!(client.forget(n).is_none());
        assert!(client.query(n).is_none());
        assert!(client.all_complete(), "no remaining queries");
    }
}
