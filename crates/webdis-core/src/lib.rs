#![warn(missing_docs)]

//! The WEBDIS distributed query engine — the paper's contribution.
//!
//! User queries written in DISQL are decomposed into node-queries and
//! *shipped* from site to site along the Web's hyperlink structure; each
//! query server evaluates its share against locally-built virtual
//! relations and returns results directly to the user site. The modules
//! map onto the paper's sections:
//!
//! * [`server`] — the query-server daemon (Figures 3 and 4): clone
//!   processing, PRE-driven forwarding with per-site batching, dead-end
//!   detection, passive termination on result-dispatch failure;
//! * [`user`] — the user-site client (Figure 2): query dispatch, result
//!   collection, and completion detection;
//! * [`cht`] — the Current Hosts Table protocol (Section 2.7.1), extended
//!   with tombstones so completion detection stays exact when reports
//!   overtake the merges that announce them on an asynchronous network;
//! * [`logtable`] — the node-query log table (Section 3.1.1): duplicate
//!   elimination, `A*m·B` subsumption, and the multiple-rewrite rule;
//! * [`config`] — every §3 optimization individually switchable for the
//!   ablation experiments;
//! * [`simrun`] — the one-call harness that runs a DISQL query on a
//!   [`webdis_web::HostedWeb`] over the deterministic simulator;
//! * [`datashipping`] — the centralized download-and-evaluate baseline
//!   the paper argues against (Sections 1 and 6);
//! * [`tcprun`] — the same engine on real TCP sockets over loopback, one
//!   listener thread per site, demonstrating the "currently operational"
//!   deployment shape.
//!
//! Quick start:
//!
//! ```
//! use std::sync::Arc;
//! use webdis_core::{run_query_sim, EngineConfig};
//! use webdis_sim::SimConfig;
//!
//! let web = Arc::new(webdis_web::figures::campus());
//! let outcome = run_query_sim(
//!     web,
//!     webdis_web::figures::CAMPUS_QUERY,
//!     EngineConfig::default(),
//!     SimConfig::default(),
//! )
//! .unwrap();
//! assert!(outcome.complete);
//! assert_eq!(outcome.rows_of_stage(1).len(), 3); // the three conveners
//! ```

pub mod cht;
pub mod client;
pub mod config;
pub mod datashipping;
pub mod hybrid;
pub mod logtable;
pub mod network;
pub mod report;
pub mod server;
pub mod simrun;
pub mod tcprun;
pub mod user;

pub use cht::{Cht, ChtStats};
pub use client::{ClientProcess, ScheduledClient, ScheduledSubmission, SimClient};
pub use config::{
    AdmissionPolicy, ChtMode, CompletionMode, EngineConfig, ExpiryPolicy, LogMode, ProcModel,
};
pub use datashipping::{
    run_datashipping_sim, run_datashipping_sim_traced, run_datashipping_sim_with, DataShipUser,
};
pub use hybrid::{run_query_hybrid_sim, HybridStats, HybridUser};
pub use logtable::{LogOutcome, LogTable};
pub use network::{query_server_addr, Network, NetworkError};
pub use report::{render_html, render_text, ResultsView};
pub use server::{ServerEngine, ServerStats};
pub use simrun::{
    register_web_sites, register_web_sites_live, run_query_sim, QueryOutcome, SimRunError,
};
pub use tcprun::{
    run_queries_tcp, run_query_tcp, run_query_tcp_faulty, run_query_tcp_live, CrashWindow,
    TcpCluster, TcpFaultPlan, TcpNet, TcpOutcome,
};
pub use user::{TraceEvent, UserSite};
pub use webdis_cache::{AnswerCache, CachePolicy, CacheStats};
pub use webdis_monitor::{
    default_rules, AlertLogEntry, AlertRule, Condition, InflightStatus, MonitorConfig,
    MonitorHandle, Signal, StatusSnapshot,
};
