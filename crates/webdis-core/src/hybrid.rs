//! Hybrid execution — the paper's Section 7.1 "gradual migration path".
//!
//! Sites that do not run a WEBDIS query server can still be queried: when
//! a server's clone forward is refused, it hands the destination nodes
//! back to the user site ([`Disposition::Handoff`]) instead of
//! dead-ending them. The hybrid user site then behaves like the
//! traditional centralized system *for exactly those nodes*: it downloads
//! the documents from the sites' plain web servers, evaluates the
//! node-queries locally (the very same `traverse_node` core the
//! distributed servers run), and — crucially — **re-enters distributed
//! processing** whenever the traversal leads back into a participating
//! site, by dispatching fresh clones.
//!
//! Completion accounting never changes: the CHT remains the single source
//! of truth. Handoff entries stay live until the local fallback processes
//! their nodes, at which point the hybrid engine synthesizes the same
//! `NodeReport` a remote server would have sent and applies it to its own
//! CHT. With zero participating sites this degenerates to data shipping;
//! with all sites participating the fallback never runs — the migration
//! path the paper promises, measured by experiment T7.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use webdis_disql::parse_disql;
use webdis_model::{SiteAddr, Url};
use webdis_net::{
    ChtEntry, CloneState, Disposition, FetchRequest, Message, NodeReport, QueryClone, QueryId,
    ResultReport,
};
use webdis_rel::NodeDb;
use webdis_sim::{Actor, Ctx, SimConfig, SimEvent};

use webdis_trace::{TraceEvent as TrEvent, TraceRecord};

use crate::config::EngineConfig;
use crate::logtable::{LogOutcome, LogTable};
use crate::network::{query_server_addr, Network};
use crate::server::{traverse_node, TraceCtx};
use crate::simrun::{
    build_sim_participating, user_addr, CtxNet, QueryOutcome, SimRunError, SimServer,
};
use crate::user::UserSite;

/// Counters for the hybrid fallback path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Nodes handed back by servers (plus non-participating StartNodes).
    pub handoffs: u64,
    /// Documents downloaded by the fallback.
    pub fetches: u64,
    /// Node-query evaluations performed at the user site.
    pub local_evaluations: u64,
    /// Clones dispatched back into participating sites.
    pub reentries: u64,
    /// Fallback arrivals dropped as duplicates by the local log table.
    pub local_duplicates: u64,
}

/// The hybrid user site: a [`UserSite`] plus the centralized fallback.
pub struct HybridUser {
    /// The wrapped standard client (CHT, results, trace).
    pub user: UserSite,
    config: EngineConfig,
    self_addr: SiteAddr,
    /// Local log table for fallback arrivals (only ever sees nodes on
    /// non-participating sites, so it is disjoint from the servers').
    log: LogTable,
    /// Downloaded documents (`None` = site unreachable or 404).
    cache: HashMap<Url, Option<Rc<NodeDb>>>,
    /// Fallback work waiting on an in-flight download.
    pending: HashMap<Url, Vec<CloneState>>,
    /// Counters.
    pub stats: HybridStats,
}

impl HybridUser {
    /// Creates the hybrid client. `config.hybrid` is forced on, and the
    /// completion protocol is forced to the CHT: the handoff mechanism is
    /// *defined* in terms of CHT entries and reports (a server announces
    /// the unreachable destinations and the fallback clears them), so
    /// ack-chain completion cannot express it — under ack chains a server
    /// has no way to delegate an unreachable subtree to the user.
    pub fn new(id: QueryId, query: webdis_disql::WebQuery, mut config: EngineConfig) -> HybridUser {
        config.hybrid = true;
        config.completion = crate::config::CompletionMode::Cht;
        let self_addr = id.reply_to();
        HybridUser {
            user: UserSite::new(id, query, config.clone()),
            config,
            self_addr,
            log: LogTable::new(),
            cache: HashMap::new(),
            pending: HashMap::new(),
            stats: HybridStats::default(),
        }
    }

    /// Dispatches the query; StartNodes on non-participating sites go
    /// straight to the fallback.
    pub fn start(&mut self, net: &mut dyn Network) {
        self.user.start(net);
        let handoffs = std::mem::take(&mut self.user.handoff_start);
        for (node, state) in handoffs {
            self.enqueue_handoff(net, node, state);
        }
    }

    /// Handles reports (splitting out handoffs) and fetch replies.
    pub fn on_message(&mut self, net: &mut dyn Network, msg: Message) {
        match msg {
            Message::Report(report) => {
                if report.id != self.user.id {
                    return;
                }
                // Duplicate-delivery guard before the handoff split: a
                // replayed report must neither re-apply its rows nor
                // re-enqueue its handoffs.
                if self.user.is_duplicate_report(&report.origin, report.seq) {
                    return;
                }
                let mut pass_through = Vec::new();
                let mut handoffs = Vec::new();
                for nr in report.reports {
                    if nr.disposition == Disposition::Handoff {
                        handoffs.push((nr.node, nr.state));
                    } else {
                        pass_through.push(nr);
                    }
                }
                if !pass_through.is_empty() {
                    self.user.apply_report(
                        net.now_us(),
                        ResultReport {
                            id: report.id,
                            origin: report.origin,
                            seq: report.seq,
                            reports: pass_through,
                        },
                    );
                }
                for (node, state) in handoffs {
                    self.enqueue_handoff(net, node, state);
                }
            }
            Message::FetchReply(reply) => {
                let url = reply.url.without_fragment();
                if self.cache.contains_key(&url) {
                    return; // duplicate reply
                }
                let db = reply.html.map(|html| {
                    net.work(self.config.proc.parse_cost_us(html.len()));
                    Rc::new(NodeDb::build(&url, &webdis_html::parse_html(&html)))
                });
                self.config.tracer.emit_with(|| TraceRecord {
                    time_us: net.now_us(),
                    site: self.self_addr.host.clone(),
                    query: Some(self.user.id.clone()),
                    hop: None,
                    event: TrEvent::DocFetch {
                        url: url.to_string(),
                        cache_hit: false,
                        // Fetch replies carry no version (frozen wire
                        // format): stamp the frozen-web default.
                        content_version: 0,
                    },
                });
                self.cache.insert(url.clone(), db);
                for state in self.pending.remove(&url).unwrap_or_default() {
                    self.process_handoff(net, url.clone(), state);
                }
            }
            _ => {}
        }
    }

    /// Queues one handed-off node: process immediately if its document is
    /// cached, otherwise request the download.
    fn enqueue_handoff(&mut self, net: &mut dyn Network, node: Url, state: CloneState) {
        self.stats.handoffs += 1;
        if self.cache.contains_key(&node) {
            self.process_handoff(net, node, state);
            return;
        }
        let first_request = !self.pending.contains_key(&node);
        self.pending.entry(node.clone()).or_default().push(state);
        if first_request {
            self.stats.fetches += 1;
            let req = Message::Fetch(FetchRequest {
                url: node.clone(),
                reply_host: self.self_addr.host.clone(),
                reply_port: self.self_addr.port,
            });
            if net.send(&node.site(), req).is_err() {
                // Not even a web server: everything pending dead-ends.
                self.cache.insert(node.clone(), None);
                for state in self.pending.remove(&node).unwrap_or_default() {
                    self.process_handoff(net, node.clone(), state);
                }
            }
        }
    }

    /// Runs one handed-off node through the shared traversal core and
    /// applies the synthesized report; forwards that reach participating
    /// sites become real clones again.
    fn process_handoff(&mut self, net: &mut dyn Network, node: Url, state: CloneState) {
        let now = net.now_us();
        let total = self.user.query().stages.len();
        let stage_idx = total - state.num_q as usize;
        let id = self.user.id.clone();

        // The local log table plays the role a server's would.
        let (pre, rewritten) =
            match self
                .log
                .check(self.config.log_mode, &id, &node, &state, true, now)
            {
                LogOutcome::Drop { .. } => {
                    // The local drop must still clear (or cancel) the entry.
                    self.stats.local_duplicates += 1;
                    self.apply_local(
                        now,
                        node,
                        state,
                        Disposition::Duplicate,
                        Vec::new(),
                        Vec::new(),
                    );
                    return;
                }
                LogOutcome::Process { pre, rewritten } => (pre, rewritten),
            };

        let Some(Some(db)) = self.cache.get(&node).cloned() else {
            self.apply_local(
                now,
                node,
                state,
                Disposition::DeadEnd,
                Vec::new(),
                Vec::new(),
            );
            return;
        };

        let query = self.user.query().clone();
        let now_fn = || net.now_us();
        let out = traverse_node(
            &db,
            &node,
            &query.stages,
            0,
            pre,
            stage_idx,
            &mut self.log,
            self.config.log_mode,
            &id,
            now,
            &TraceCtx {
                tracer: &self.config.tracer,
                site: &self.self_addr.host,
                hop: None,
                now: &now_fn,
                eval_cost_us: self.config.proc.eval_us,
            },
            // The hybrid fallback evaluates centrally at the user site,
            // which keeps no answer cache (the caches live at the query
            // servers whose content they mirror).
            None,
        );
        self.stats.local_evaluations += out.counters.evaluations;
        net.work(self.config.proc.eval_us * out.counters.evaluations);
        self.stats.local_duplicates += out.counters.duplicates_dropped;

        // Dedupe and announce forwards; decide per destination site
        // whether to re-enter distributed processing or keep falling back.
        let mut new_entries = Vec::new();
        let mut seen: BTreeSet<(Url, String)> = BTreeSet::new();
        let mut per_site: BTreeMap<(SiteAddr, String, usize), (CloneState, Vec<Url>)> =
            BTreeMap::new();
        for (target, fstate, idx) in out.forwards {
            let key = (target.clone(), format!("{fstate}"));
            if !seen.insert(key) {
                continue;
            }
            new_entries.push(ChtEntry {
                node: target.clone(),
                state: fstate.clone(),
            });
            per_site
                .entry((target.site(), format!("{fstate}"), idx))
                .or_insert_with(|| (fstate.clone(), Vec::new()))
                .1
                .push(target);
        }

        let disposition = if rewritten {
            Disposition::Rewritten
        } else if out.any_answer {
            Disposition::Answered
        } else if new_entries.is_empty() {
            Disposition::DeadEnd
        } else {
            Disposition::PureRouted
        };
        // Announce entries (and results) before any clone leaves — the
        // same ordering discipline the servers follow.
        self.apply_local(now, node, state, disposition, out.results, new_entries);

        let mut fallback: VecDeque<(Url, CloneState)> = VecDeque::new();
        for ((site, _, idx), (fstate, dests)) in per_site {
            let clone = QueryClone {
                id: id.clone(),
                dest_nodes: dests.clone(),
                rem_pre: fstate.rem_pre.clone(),
                stages: query.stages[idx..].to_vec(),
                stage_offset: idx as u32,
                hops: 0,
                ack_host: id.host.clone(),
                ack_port: id.port,
            };
            if net
                .send(&query_server_addr(&site), Message::Query(clone))
                .is_ok()
            {
                // Back into distributed processing.
                self.stats.reentries += 1;
            } else {
                for dest in dests {
                    fallback.push_back((dest, fstate.clone()));
                }
            }
        }
        for (dest, fstate) in fallback {
            self.enqueue_handoff(net, dest, fstate);
        }
    }

    /// Applies a locally-synthesized node report to the wrapped client.
    fn apply_local(
        &mut self,
        now_us: u64,
        node: Url,
        state: CloneState,
        disposition: Disposition,
        results: Vec<webdis_net::StageRows>,
        new_entries: Vec<ChtEntry>,
    ) {
        let report = ResultReport {
            id: self.user.id.clone(),
            // Locally synthesized: seq 0 bypasses the duplicate guard
            // (the fallback legitimately reports many nodes in turn).
            origin: "local".into(),
            seq: 0,
            reports: vec![NodeReport {
                node,
                state,
                disposition,
                results,
                new_entries,
            }],
        };
        self.user.apply_report(now_us, report);
    }
}

/// The hybrid client bound to the simulator.
pub struct SimHybridUser {
    /// The wrapped engine.
    pub hybrid: HybridUser,
}

impl Actor for SimHybridUser {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: SimEvent) {
        match event {
            SimEvent::Start => self.hybrid.start(&mut CtxNet(ctx)),
            SimEvent::Net(msg) => self.hybrid.on_message(&mut CtxNet(ctx), msg),
            SimEvent::Timer(_) => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Runs a DISQL query in hybrid mode: only `participating` sites run
/// query servers; everything else is reached through the user-site
/// fallback. An empty list degenerates to (CHT-accounted) data shipping.
pub fn run_query_hybrid_sim(
    web: Arc<webdis_web::HostedWeb>,
    disql: &str,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
    participating: &[SiteAddr],
) -> Result<(QueryOutcome, HybridStats), SimRunError> {
    let query = parse_disql(disql).map_err(SimRunError::Parse)?;
    let mut engine_cfg = engine_cfg;
    engine_cfg.hybrid = true;
    // Hybrid handoff is a CHT-protocol construct; see [`HybridUser::new`].
    engine_cfg.completion = crate::config::CompletionMode::Cht;
    let sites = web.sites();

    let mut net = build_sim_participating(
        Arc::clone(&web),
        query.clone(),
        engine_cfg.clone(),
        sim_cfg,
        Some(participating),
    );
    // Replace the standard user actor with the hybrid one.
    let addr = user_addr();
    net.deregister(&addr);
    let id = QueryId {
        user: "webdis".into(),
        host: addr.host.clone(),
        port: addr.port,
        query_num: 1,
    };
    net.register(
        addr.clone(),
        Box::new(SimHybridUser {
            hybrid: HybridUser::new(id, query, engine_cfg),
        }),
    );
    net.start(&addr);
    let duration_us = net.run();

    let mut server_stats = BTreeMap::new();
    for site in sites {
        if let Some(server) = net.actor_mut::<SimServer>(&query_server_addr(&site)) {
            server_stats.insert(site, server.engine.stats);
        }
    }
    let user = net
        .actor_mut::<SimHybridUser>(&addr)
        .expect("hybrid user registered");
    let stats = user.hybrid.stats;
    let u = &user.hybrid.user;
    Ok((
        QueryOutcome {
            complete: u.complete,
            results: u.results.clone(),
            trace: u.trace.clone(),
            first_result_us: u.first_result_us,
            completed_at_us: u.completed_at_us,
            cht_stats: u.cht.stats,
            failed_entries: u.failed_entries.clone(),
            shed_entries: u.shed_entries.clone(),
            dead_link_entries: u.dead_link_entries.clone(),
            why_incomplete: u.why_incomplete(),
            metrics: net.metrics.clone(),
            duration_us,
            server_stats,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_query_sim;
    use webdis_web::figures;

    fn participating_subset(web: &webdis_web::HostedWeb, keep: usize) -> Vec<SiteAddr> {
        web.sites().into_iter().take(keep).collect()
    }

    #[test]
    fn ack_chain_config_is_coerced_to_cht() {
        // Regression: hybrid handoff is defined in terms of CHT reports;
        // an ack-chain config passed in must be coerced, not honoured
        // (honouring it silently lost every server-side handoff).
        let web = Arc::new(figures::campus());
        let reference = crate::run_query_sim(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let csa: Vec<_> = web
            .sites()
            .into_iter()
            .filter(|s| s.host == "www.csa.iisc.ernet.in")
            .collect();
        let (outcome, stats) = run_query_hybrid_sim(
            web,
            figures::CAMPUS_QUERY,
            EngineConfig::ack_chain(),
            SimConfig::default(),
            &csa,
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.result_set(), reference.result_set());
        assert!(stats.handoffs > 0, "the lab sites were handed off");
    }

    #[test]
    fn zero_participation_degenerates_to_central() {
        let web = Arc::new(figures::campus());
        let reference = run_query_sim(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let (outcome, stats) = run_query_hybrid_sim(
            web,
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
            &[],
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.result_set(), reference.result_set());
        assert_eq!(stats.reentries, 0, "nothing to re-enter");
        assert!(stats.fetches > 0, "everything was downloaded");
    }

    #[test]
    fn full_participation_never_falls_back() {
        let web = Arc::new(figures::campus());
        let all = web.sites();
        let (outcome, stats) = run_query_hybrid_sim(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
            &all,
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.rows_of_stage(1).len(), 3);
        assert_eq!(stats.handoffs, 0);
        assert_eq!(stats.fetches, 0);
    }

    #[test]
    fn partial_participation_agrees_and_reenters() {
        let web = Arc::new(figures::campus());
        let reference = run_query_sim(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let sites = web.sites();
        for keep in 1..sites.len() {
            let participating = participating_subset(&web, keep);
            let (outcome, stats) = run_query_hybrid_sim(
                Arc::clone(&web),
                figures::CAMPUS_QUERY,
                EngineConfig::default(),
                SimConfig::default(),
                &participating,
            )
            .unwrap();
            assert!(outcome.complete, "hybrid with {keep} sites must complete");
            assert_eq!(
                outcome.result_set(),
                reference.result_set(),
                "hybrid with {keep} participating sites must agree"
            );
            assert!(
                stats.handoffs > 0 || stats.fetches == 0,
                "fetches only happen for handed-off nodes"
            );
        }
    }

    #[test]
    fn more_participation_means_less_download_traffic() {
        let web = Arc::new(webdis_web::generate(&webdis_web::WebGenConfig {
            sites: 8,
            docs_per_site: 3,
            filler_words: 300,
            seed: 77,
            ..webdis_web::WebGenConfig::default()
        }));
        let disql = r#"select d.url from document d
                       such that "http://site0.test/doc0.html" (L|G)* d
                       where d.title contains "needle""#;
        let sites = web.sites();
        let mut prev_bytes = u64::MAX;
        let mut seen_decrease = false;
        for keep in [0usize, 4, 8] {
            let participating: Vec<_> = sites.iter().take(keep).cloned().collect();
            let (outcome, _) = run_query_hybrid_sim(
                Arc::clone(&web),
                disql,
                EngineConfig::default(),
                SimConfig::default(),
                &participating,
            )
            .unwrap();
            assert!(outcome.complete);
            let fetched = outcome.metrics.bytes_of("fetch-reply");
            if fetched < prev_bytes {
                seen_decrease = true;
            }
            prev_bytes = fetched;
        }
        assert!(
            seen_decrease,
            "document bytes must fall as participation grows"
        );
        assert_eq!(prev_bytes, 0, "full participation downloads nothing");
    }
}
