//! Engine configuration: every design choice of Section 3 is a switch, so
//! the ablation experiments can measure what each one buys.

use webdis_cache::CachePolicy;
use webdis_monitor::MonitorHandle;
use webdis_trace::TraceHandle;

/// Duplicate-recognition policy of the node-query log table
/// (Section 3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// No log table: every clone arrival is processed. Cyclic webs then
    /// rely on the hop limit — this mode exists to measure what the log
    /// table saves (experiment T3).
    Off,
    /// The paper's rule: exact state identity plus `A*m·B` bounded-head
    /// subsumption with the multiple-rewrite for supersets.
    Paper,
    /// The paper's rule, extended with general NFA language containment
    /// for PRE shapes the syntactic rule cannot relate (this crate's
    /// extension; see DESIGN.md).
    General,
}

/// Which completion-detection protocol runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionMode {
    /// The paper's Current Hosts Table (Section 2.7.1): servers report
    /// results and CHT deltas to the user site, which tracks every live
    /// clone. Detection happens one hop after the last node is processed,
    /// and the user always knows *where* the query currently runs.
    Cht,
    /// Dijkstra–Scholten acknowledgement chains — the approach of the
    /// related work the paper contrasts in Section 6 ("the StartNode
    /// acknowledges the message only if all the nodes to which it had
    /// forwarded the query have acknowledged"). Servers track a deficit
    /// per query and ack their spawn-tree parent once their subtree
    /// drains; the user site is the root. No CHT entries travel, and
    /// resultless nodes send nothing to the user — but detection waits
    /// for the ack wave to collapse back up the tree, and the user never
    /// learns which sites hold the query (experiment T11).
    AckChain,
}

/// Completion-protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChtMode {
    /// The paper's Section 3.1.1 refinement: the user site does not enter
    /// a CHT entry equivalent to one already present, and query servers
    /// drop duplicate clones silently. Saves report traffic; relies on
    /// the user-site's skip rule mirroring the servers' log decisions
    /// (made robust to reordering here with tombstones and
    /// subsumption-aware delete handling — see `cht`).
    Paper,
    /// Every forwarded clone gets a CHT entry and every clone arrival —
    /// including duplicates — is reported. One add, one delete, exact
    /// matching; trivially robust, more report messages.
    Strict,
}

/// Local processing-cost model, charged to the simulator's per-endpoint
/// sequential processor (Section 4.4's single Query Processor thread).
/// Zeros (the default) make processing instantaneous, so only network
/// costs shape virtual time; experiment T6 uses a 1999-workstation-ish
/// model to expose the user-site CPU bottleneck under data shipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcModel {
    /// Database-Constructor cost per KiB of raw HTML parsed.
    pub parse_us_per_kib: u64,
    /// Cost per node-query evaluation.
    pub eval_us: u64,
}

impl ProcModel {
    /// A 1999-workstation-ish model: ~1 ms to parse 1 KiB of HTML into
    /// virtual relations, 200 µs per node-query evaluation.
    pub fn workstation_1999() -> ProcModel {
        ProcModel {
            parse_us_per_kib: 1_000,
            eval_us: 200,
        }
    }

    /// The parse charge for a document of `bytes` raw bytes.
    pub fn parse_cost_us(&self, bytes: usize) -> u64 {
        (self.parse_us_per_kib * bytes as u64).div_ceil(1024)
    }
}

/// Server-side admission control for multi-query load: a bound on the
/// queries a single site processes concurrently. A clone of a query not
/// yet admitted arriving while the site is full is *shed* — refused
/// without processing, with an explicit report back to the user site so
/// the query concludes with [`TermReason::Shed`](webdis_trace::TermReason)
/// instead of hanging. Admitted queries are never shed mid-flight: later
/// clones of an in-flight query always pass, so a traversal cannot be
/// half-refused at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum distinct queries concurrently in flight at one server.
    pub max_queries: usize,
}

/// Section 7.1 graceful recovery: how long a CHT entry may sit
/// unresolved before the user site writes the clone off as lost and
/// completes without it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpiryPolicy {
    /// Age (µs) past which a live CHT row or tombstone counts as stale.
    pub timeout_us: u64,
    /// How often the user site checks for stale entries (µs).
    pub period_us: u64,
}

impl ExpiryPolicy {
    /// A policy that checks four times per timeout window — frequent
    /// enough that completion lags the timeout by at most a quarter of
    /// it, rare enough not to dominate the event queue.
    pub fn with_timeout(timeout_us: u64) -> ExpiryPolicy {
        ExpiryPolicy {
            timeout_us,
            period_us: (timeout_us / 4).max(1),
        }
    }
}

/// Engine configuration shared by user sites and query servers. Both
/// sides must run the same configuration (in particular the same
/// [`LogMode`]/[`ChtMode`] pair) for completion detection to be exact.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Duplicate recognition policy.
    pub log_mode: LogMode,
    /// Completion-detection protocol.
    pub completion: CompletionMode,
    /// CHT bookkeeping variant (only meaningful under
    /// [`CompletionMode::Cht`]).
    pub cht_mode: ChtMode,
    /// Optimization 4 of Section 3.2: one clone per destination *site*
    /// carrying all destination nodes, instead of one clone per node.
    pub batch_per_site: bool,
    /// Footnote 4 of Section 2.5: destinations on the server's own site
    /// are processed in place instead of being sent through the network.
    pub local_forwarding: bool,
    /// Safety valve: clones are dead-ended once they have crossed this
    /// many sites. Only reachable in practice when `log_mode` is `Off`
    /// on a cyclic web.
    pub max_hops: u32,
    /// Log-table entries older than this (virtual µs) may be purged when
    /// [`LogTable::purge`](crate::LogTable::purge) is called. `None`
    /// disables purging.
    pub log_purge_us: Option<u64>,
    /// Section 7.1 hybrid mode: when a clone's destination site runs no
    /// query server, the forwarding server *hands the nodes back* to the
    /// user site, which downloads those documents and evaluates the
    /// node-queries centrally — re-entering distributed processing when
    /// the traversal leads back into participating sites. Off, such
    /// destinations are reported as dead ends.
    pub hybrid: bool,
    /// Footnote 3 of Section 2.4: a site expecting a node to "receive
    /// several queries, … can choose to retain the associated database so
    /// that the construction cost does not have to be paid repeatedly."
    /// Number of parsed node databases each server retains (FIFO
    /// eviction); 0 disables the cache, reproducing the paper's default
    /// build-then-purge behaviour.
    pub doc_cache_size: usize,
    /// Living-web staleness guard for the footnote-3 cache: on every hit
    /// the cached build's content version is checked against the
    /// document's current status, and superseded builds are evicted and
    /// reparsed. `true` (the default) is the consistency contract; the
    /// `false` setting reproduces the historical serve-whatever-is-cached
    /// behaviour so the chaos oracle can demonstrate the staleness bug it
    /// guards against. Irrelevant on a frozen web, where versions never
    /// change.
    pub validate_doc_cache: bool,
    /// Section 7.1 graceful recovery: when set, the runtime periodically
    /// calls [`UserSite::expire_stale`](crate::UserSite::expire_stale) so
    /// a query whose clones were lost to crashes or drops still
    /// completes — with the unresolved nodes listed in `failed_entries`
    /// instead of hanging forever. `None` (the default) never expires:
    /// completion then relies on every clone being accounted for. Only
    /// meaningful under [`CompletionMode::Cht`].
    pub expiry: Option<ExpiryPolicy>,
    /// Server-side admission control: bound on concurrently in-flight
    /// queries per site, with explicit load shedding beyond it. `None`
    /// (the default) admits everything — the single-query behaviour.
    pub admission: Option<AdmissionPolicy>,
    /// Cross-query answer cache (ROADMAP item 4): each server keeps a
    /// memory-bounded, subsumption-aware store of node-query answers it
    /// consults before evaluating. `None` (the default) disables it and
    /// reproduces the uncached engine bit-for-bit; `Some(policy)` sets
    /// the byte budget and the modeled per-lookup processor cost.
    pub cache: Option<CachePolicy>,
    /// Local processing-cost model (simulated runs only).
    pub proc: ProcModel,
    /// Event sink for query-trajectory tracing (`webdis-trace`). The
    /// default no-op sink records nothing and costs one inlined branch
    /// per instrumentation point; runners copy this handle into the
    /// transport so engine and network events share one stream.
    pub tracer: TraceHandle,
    /// Live observability (`webdis-monitor`): windowed time-series,
    /// the in-flight query registry, and the alert-rule engine. `None`
    /// (the default) removes every hook, so an unmonitored run's
    /// metrics and traces are bit-identical to the pre-monitor engine.
    /// The runners drive window closes — the engine only feeds the
    /// in-flight registry from its admit/clone/terminate paths.
    pub monitor: Option<MonitorHandle>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            log_mode: LogMode::Paper,
            completion: CompletionMode::Cht,
            cht_mode: ChtMode::Paper,
            batch_per_site: true,
            local_forwarding: true,
            max_hops: 64,
            log_purge_us: None,
            hybrid: false,
            doc_cache_size: 0,
            validate_doc_cache: true,
            expiry: None,
            admission: None,
            cache: None,
            proc: ProcModel::default(),
            tracer: TraceHandle::noop(),
            monitor: None,
        }
    }
}

impl EngineConfig {
    /// The robust variant: strict CHT accounting (used under heavy
    /// message reordering) with the paper's log table.
    pub fn strict() -> EngineConfig {
        EngineConfig {
            cht_mode: ChtMode::Strict,
            ..EngineConfig::default()
        }
    }

    /// Ack-chain completion detection (Section 6's alternative).
    pub fn ack_chain() -> EngineConfig {
        EngineConfig {
            completion: CompletionMode::AckChain,
            ..EngineConfig::default()
        }
    }

    /// Everything off — the unoptimized strawman for ablations.
    pub fn unoptimized() -> EngineConfig {
        EngineConfig {
            log_mode: LogMode::Off,
            completion: CompletionMode::Cht,
            cht_mode: ChtMode::Strict,
            batch_per_site: false,
            local_forwarding: false,
            max_hops: 16,
            log_purge_us: None,
            hybrid: false,
            doc_cache_size: 0,
            validate_doc_cache: true,
            expiry: None,
            admission: None,
            cache: None,
            proc: ProcModel::default(),
            tracer: TraceHandle::noop(),
            monitor: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::default();
        assert_eq!(c.log_mode, LogMode::Paper);
        assert_eq!(c.cht_mode, ChtMode::Paper);
        assert!(c.batch_per_site);
        assert!(c.local_forwarding);
    }

    #[test]
    fn presets_differ() {
        assert_eq!(EngineConfig::strict().cht_mode, ChtMode::Strict);
        let u = EngineConfig::unoptimized();
        assert_eq!(u.log_mode, LogMode::Off);
        assert!(!u.batch_per_site);
    }
}
