//! The query-server daemon (Sections 2.4, 2.5, 4.4; Figures 3 and 4).
//!
//! A server receives a [`QueryClone`] addressed to one or more nodes it
//! hosts and, for each admitted arrival:
//!
//! 1. consults the node-query **log table** (duplicates dropped,
//!    supersets rewritten — Section 3.1.1);
//! 2. builds the node's virtual relations in memory (the Database
//!    Constructor) and, whenever the remaining PRE *contains the null
//!    link* (is nullable), evaluates the pending node-query — an empty
//!    result makes the node a **dead end** (Figure 4, lines 3–4);
//! 3. a successful evaluation with node-queries remaining *continues at
//!    the same node* with the next PRE (this is how Figure 1's node 4
//!    "acts twice"), and the PRE's derivatives determine the links to
//!    forward along;
//! 4. forwards are batched one clone per destination **site**
//!    (optimization 4), with same-site destinations processed in place
//!    (footnote 4) so their results join the same report;
//! 5. the results-plus-CHT report is dispatched to the user site *before*
//!    any clone is forwarded, and forwarding happens only if that
//!    dispatch succeeded — the ordering that makes the CHT protocol and
//!    passive termination sound (Sections 2.7.1, 2.8).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use webdis_cache::{AnswerCache, Lookup as CacheLookup};
use webdis_model::{SiteAddr, Url};
use webdis_net::{
    AckMsg, ChtEntry, CloneState, Disposition, FetchResponse, Message, NodeReport, QueryClone,
    QueryId, ResultReport, StageRows,
};
use webdis_pre::Pre;
use webdis_rel::{
    canonicalize, eval_node_query_with_bindings, eval_node_query_with_stats, NodeDb, ResultRow,
};
use webdis_trace::{TermReason, TraceEvent, TraceHandle, TraceRecord};
use webdis_web::{DocStatus, FetchOutcome, HostedWeb, LiveWeb, WebView};

use crate::config::{ChtMode, CompletionMode, EngineConfig};
use crate::logtable::{LogOutcome, LogTable};
use crate::network::{query_server_addr, Network};

/// Per-server counters, the raw material of the ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Clone messages received.
    pub clones_received: u64,
    /// Node arrivals processed (admitted past the log table).
    pub arrivals: u64,
    /// Arrivals handled without a network hop (footnote 4).
    pub local_arrivals: u64,
    /// Node-query evaluations performed.
    pub evaluations: u64,
    /// Arrivals that produced at least one answer.
    pub answered: u64,
    /// Arrivals that ended the traversal (failed evaluation, missing
    /// document, or no matching links).
    pub dead_ends: u64,
    /// Arrivals dropped by the log table.
    pub duplicates_dropped: u64,
    /// Superset arrivals processed with a rewritten PRE.
    pub rewrites: u64,
    /// Documents parsed (Database Constructor invocations).
    pub docs_parsed: u64,
    /// Arrivals served from the footnote-3 document cache.
    pub doc_cache_hits: u64,
    /// Arrivals addressed to documents this site does not host.
    pub missing_docs: u64,
    /// Arrivals at documents deleted after the link was followed
    /// (living-web link rot): each one terminates its branch with an
    /// explicit dead-link report instead of a hang or a phantom row.
    pub dead_links: u64,
    /// Cache flushes triggered by a site content-version bump (the
    /// living-web hook behind `invalidate_cache`).
    pub cache_invalidations: u64,
    /// Clone messages forwarded to other sites.
    pub clones_forwarded: u64,
    /// Clones dropped by the hop-count safety valve.
    pub hop_limit_drops: u64,
    /// Queries purged after a failed result dispatch (passive
    /// termination observed).
    pub terminated_queries: u64,
    /// Forward attempts to sites with no query server.
    pub unreachable_sites: u64,
    /// Node-query evaluation errors (should be zero after DISQL
    /// validation).
    pub eval_errors: u64,
    /// Clones refused (and reported back) by admission control.
    pub queries_shed: u64,
    /// Node-queries served from the answer cache (exact + subsumed).
    pub cache_hits: u64,
    /// Answer-cache consults that fell through to evaluation.
    pub cache_misses: u64,
    /// Answer-cache entries evicted for space.
    pub cache_evictions: u64,
}

impl ServerStats {
    /// The counters as `(name, value)` pairs, for ingestion into a
    /// `webdis_trace::Registry` (the unified reporting surface).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("clones_received", self.clones_received),
            ("arrivals", self.arrivals),
            ("local_arrivals", self.local_arrivals),
            ("evaluations", self.evaluations),
            ("answered", self.answered),
            ("dead_ends", self.dead_ends),
            ("duplicates_dropped", self.duplicates_dropped),
            ("rewrites", self.rewrites),
            ("docs_parsed", self.docs_parsed),
            ("doc_cache_hits", self.doc_cache_hits),
            ("missing_docs", self.missing_docs),
            ("dead_links", self.dead_links),
            ("cache_invalidations", self.cache_invalidations),
            ("clones_forwarded", self.clones_forwarded),
            ("hop_limit_drops", self.hop_limit_drops),
            ("terminated_queries", self.terminated_queries),
            ("unreachable_sites", self.unreachable_sites),
            ("eval_errors", self.eval_errors),
            ("queries_shed", self.queries_shed),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
        ]
    }
}

/// Per-query Dijkstra–Scholten state (ack-chain completion mode).
#[derive(Debug, Default)]
struct AckState {
    /// Currently engaged in the spawn tree.
    engaged: bool,
    /// The engager, owed an ack when the subtree drains.
    parent: Option<SiteAddr>,
    /// Forwarded clones not yet acknowledged.
    deficit: u64,
}

/// One admitted arrival awaiting processing.
struct Arrival {
    node: Url,
    /// The state announced in the CHT (pre-rewrite) — reports must carry
    /// exactly this so the user site can match the entry.
    announced_state: CloneState,
    /// The effective remaining PRE (equals the announced one unless the
    /// log table rewrote it).
    effective_pre: Pre,
    /// Index into the clone's remaining-stages array.
    stage_idx: usize,
    rewritten: bool,
}

/// What [`ServerEngine::node_db`] found at a destination URL.
enum NodeLookup {
    /// The document is live: its parsed virtual relations, at the
    /// content version current at visit time.
    Found(Arc<NodeDb>),
    /// The document existed but was deleted (living-web link rot); the
    /// version is the site content version of the deletion.
    Deleted(u64),
    /// No document was ever hosted at this URL (a floating link).
    Missing,
}

/// A WEBDIS query server for one site.
pub struct ServerEngine {
    site: SiteAddr,
    /// The documents this site serves: a frozen [`HostedWeb`] snapshot
    /// (the historical behaviour, content version 0 everywhere) or a
    /// shared [`LiveWeb`] evolving under a mutation schedule.
    web: WebView,
    config: EngineConfig,
    log: LogTable,
    /// Queries known to be terminated: clones arriving for them are
    /// dropped without processing.
    purged: BTreeSet<QueryId>,
    /// Footnote-3 cache of parsed node databases, indexed by document
    /// URL for O(1) hits and carrying the content version each build
    /// parsed. Empty when `config.doc_cache_size == 0`.
    doc_cache: HashMap<Url, (Arc<NodeDb>, u64)>,
    /// Insertion order of the cached documents — the FIFO eviction queue
    /// (footnote 3 pins FIFO, not LRU: a hit does not refresh an entry).
    doc_cache_fifo: VecDeque<Url>,
    /// Queries currently in flight at this site, by the virtual time of
    /// their last clone arrival. Only maintained under admission control;
    /// entries retire on passive termination and on [`purge_log`] sweeps
    /// (a query idle for a whole purge period is done here).
    ///
    /// [`purge_log`]: ServerEngine::purge_log
    active: BTreeMap<QueryId, u64>,
    /// Dijkstra–Scholten bookkeeping per query (ack-chain mode only).
    ack: BTreeMap<QueryId, AckState>,
    /// Time of the last periodic log purge.
    last_purge_us: u64,
    /// Sequence number of the last result report shipped (dedupe key at
    /// the user site, paired with this site's hostname). Derived from
    /// the clock on every draw so a crash-restarted daemon never reuses
    /// a sequence number the network may still be carrying.
    report_seq: u64,
    /// Per-stage latency attribution for the clone currently being
    /// processed; reset at the top of [`process_clone`] and emitted as
    /// one [`TraceEvent::StageSpans`] when the pipeline finishes.
    ///
    /// [`process_clone`]: ServerEngine::process_clone
    span: StageAccum,
    /// Cross-query answer cache (ROADMAP item 4), present when
    /// `config.cache` is set. Consulted before every nullable-PRE
    /// evaluation; fed by every evaluation that completes.
    cache: Option<AnswerCache>,
    /// Highest site content version this engine has reacted to. On a
    /// living web every clone arrival polls the site version; an advance
    /// flushes the answer cache (the documents its rows were derived
    /// from may have changed) and bumps `cache_invalidations`. Always 0
    /// on a frozen web.
    seen_site_version: u64,
    /// Counters.
    pub stats: ServerStats,
}

/// Where one clone's processing microseconds went. Each stage records
/// the clock advance observed across its begin/end stamps plus the
/// modeled `ProcModel` cost charged during it: on the simulator the
/// clock is frozen inside a handler, so the modeled cost *is* the
/// duration; on TCP `work` is a no-op, so the wall-clock advance is.
#[derive(Debug, Default, Clone, Copy)]
struct StageAccum {
    queue_us: u64,
    parse_us: u64,
    log_us: u64,
    /// Answer-cache consults: lookups, subsumption replays, insertions
    /// (zero when the cache is off).
    cache_us: u64,
    eval_us: u64,
    /// Slice of `eval_us` spent in evaluations the planner served from
    /// index probes. Together with `eval_scan_us` this covers each
    /// evaluation's own span; the (TCP-only) remainder of `eval_us` is
    /// traversal overhead around the evaluator.
    eval_probe_us: u64,
    /// Slice of `eval_us` spent in evaluations that fell back to the
    /// cross-product scan on every level.
    eval_scan_us: u64,
    build_us: u64,
    forward_us: u64,
}

impl ServerEngine {
    /// Creates the server for `site`, serving documents from a frozen
    /// `web` snapshot (every page at content version 0, forever).
    pub fn new(site: SiteAddr, web: Arc<HostedWeb>, config: EngineConfig) -> ServerEngine {
        ServerEngine::with_view(site, WebView::Frozen(web), config)
    }

    /// Creates the server for `site` over a shared living web: documents
    /// are fetched at their version current at visit time, and a site
    /// content-version bump flushes the answer cache.
    pub fn new_live(site: SiteAddr, web: Arc<LiveWeb>, config: EngineConfig) -> ServerEngine {
        ServerEngine::with_view(site, WebView::Live(web), config)
    }

    fn with_view(site: SiteAddr, web: WebView, config: EngineConfig) -> ServerEngine {
        let cache = config.cache.clone().map(AnswerCache::new);
        ServerEngine {
            site,
            web,
            config,
            cache,
            log: LogTable::new(),
            purged: BTreeSet::new(),
            doc_cache: HashMap::new(),
            doc_cache_fifo: VecDeque::new(),
            active: BTreeMap::new(),
            ack: BTreeMap::new(),
            last_purge_us: 0,
            report_seq: 0,
            span: StageAccum::default(),
            seen_site_version: 0,
            stats: ServerStats::default(),
        }
    }

    /// Next report sequence number. Strictly increasing across the
    /// engine's lifetime *and* across restarts: each draw is at least
    /// `now_us * 1000`, so after a crash window (during which time
    /// advances) a fresh engine's first sequence number is already past
    /// anything the dead incarnation could have shipped.
    fn next_report_seq(&mut self, now_us: u64) -> u64 {
        self.report_seq = (self.report_seq + 1).max(now_us.saturating_mul(1000));
        self.report_seq
    }

    /// Crash-restart: the daemon comes back with its volatile state —
    /// log table, purge set, admission slots, document cache, ack
    /// bookkeeping — wiped, exactly what a process respawn loses.
    /// Counters survive (they model the harness's measurement plane,
    /// not daemon memory) and the report sequence stays monotone via
    /// the clock floor in [`next_report_seq`].
    ///
    /// [`next_report_seq`]: ServerEngine::next_report_seq
    pub fn restart(&mut self) {
        self.log = LogTable::new();
        self.purged.clear();
        self.doc_cache.clear();
        self.doc_cache_fifo.clear();
        self.active.clear();
        self.ack.clear();
        self.last_purge_us = 0;
        self.span = StageAccum::default();
        // The answer cache is volatile daemon memory too: a respawned
        // site starts cold and recomputes until it re-warms.
        if let Some(cache) = &mut self.cache {
            cache.clear();
        }
        // A respawned daemon reads the web at whatever version it is
        // *now*; its cold caches need no catch-up invalidation for
        // mutations that happened while it was down.
        self.seen_site_version = self.web.live_site_version(&self.site.host).unwrap_or(0);
    }

    /// Drops every answer-cache entry inserted so far by bumping the
    /// site content version — the "living web" hook a site calls when
    /// its documents change. A no-op without a cache.
    pub fn invalidate_cache(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.invalidate();
        }
    }

    /// The answer cache's counters, when one is configured.
    pub fn cache_stats(&self) -> Option<webdis_cache::CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Bytes resident in the answer cache, when one is configured.
    pub fn cache_resident_bytes(&self) -> Option<u64> {
        self.cache.as_ref().map(|c| c.resident_bytes())
    }

    /// Drops one document from the footnote-3 cache (stale or deleted
    /// build detected on a hit).
    fn evict_doc(&mut self, node: &Url) {
        if self.doc_cache.remove(node).is_some() {
            self.doc_cache_fifo.retain(|u| u != node);
        }
    }

    /// Builds (or retrieves from the footnote-3 cache) the virtual
    /// relations for one node, charging the parse cost to the processor.
    ///
    /// The consistency contract of the living web lives here: a cached
    /// build is served only if its content version still matches the
    /// document's current status, so every visit answers from the
    /// version current at visit time. Deleted documents come back as
    /// [`NodeLookup::Deleted`] so the caller can report a dead link.
    fn node_db(&mut self, net: &mut dyn Network, node: &Url) -> NodeLookup {
        let parse_t0 = net.now_us();
        if self.config.doc_cache_size > 0 {
            if let Some((db, version)) = self.doc_cache.get(node).cloned() {
                // `validate_doc_cache == false` reproduces the historic
                // unvalidated hit path (the staleness bug the chaos
                // oracle demonstrates); on a frozen web both answers
                // agree, since versions never move.
                let status = if self.config.validate_doc_cache {
                    self.web.doc_status(node)
                } else {
                    DocStatus::Present(version)
                };
                match status {
                    DocStatus::Present(current) if current == version => {
                        self.stats.doc_cache_hits += 1;
                        self.config.tracer.emit_with(|| TraceRecord {
                            time_us: net.now_us(),
                            site: self.site.host.clone(),
                            query: None,
                            hop: None,
                            event: TraceEvent::DocFetch {
                                url: node.to_string(),
                                cache_hit: true,
                                content_version: version,
                            },
                        });
                        self.span.parse_us += net.now_us().saturating_sub(parse_t0);
                        return NodeLookup::Found(db);
                    }
                    DocStatus::Deleted(current) => {
                        self.evict_doc(node);
                        self.span.parse_us += net.now_us().saturating_sub(parse_t0);
                        return NodeLookup::Deleted(current);
                    }
                    // Edited (version moved) or vanished: drop the stale
                    // build and fall through to a fresh fetch.
                    _ => self.evict_doc(node),
                }
            }
        }
        let (html, version) = match self.web.fetch(node) {
            FetchOutcome::Found { html, version } => (html, version),
            FetchOutcome::Deleted { version } => {
                self.span.parse_us += net.now_us().saturating_sub(parse_t0);
                return NodeLookup::Deleted(version);
            }
            FetchOutcome::Missing => {
                self.span.parse_us += net.now_us().saturating_sub(parse_t0);
                return NodeLookup::Missing;
            }
        };
        self.stats.docs_parsed += 1;
        self.config.tracer.emit_with(|| TraceRecord {
            time_us: net.now_us(),
            site: self.site.host.clone(),
            query: None,
            hop: None,
            event: TraceEvent::DocFetch {
                url: node.to_string(),
                cache_hit: false,
                content_version: version,
            },
        });
        let parse_cost = self.config.proc.parse_cost_us(html.len());
        net.work(parse_cost);
        let db = Arc::new(NodeDb::build(node, &webdis_html::parse_html(&html)));
        if self.config.doc_cache_size > 0 {
            if self.doc_cache_fifo.len() >= self.config.doc_cache_size {
                if let Some(evicted) = self.doc_cache_fifo.pop_front() {
                    self.doc_cache.remove(&evicted);
                }
            }
            self.doc_cache
                .insert(node.clone(), (Arc::clone(&db), version));
            self.doc_cache_fifo.push_back(node.clone());
        }
        self.span.parse_us += net.now_us().saturating_sub(parse_t0) + parse_cost;
        NodeLookup::Found(db)
    }

    /// The site this server is responsible for.
    pub fn site(&self) -> &SiteAddr {
        &self.site
    }

    /// Current number of log-table records (experiment T3/T4 probe).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Purges log records older than `before_us` (the periodic purge of
    /// Section 3.1.1; the harness decides the period). Also retires
    /// admission-control slots of queries whose last clone arrived before
    /// the cutoff — a query idle for a whole purge period holds no work
    /// here, so keeping its slot would starve new arrivals forever.
    pub fn purge_log(&mut self, before_us: u64) -> usize {
        self.active.retain(|_, last_seen| *last_seen >= before_us);
        self.log.purge(before_us)
    }

    /// Queries currently holding an admission slot (0 when admission
    /// control is off).
    pub fn active_queries(&self) -> usize {
        self.active.len()
    }

    /// Handles one incoming message.
    pub fn on_message(&mut self, net: &mut dyn Network, msg: Message) {
        // Section 3.1.1's periodic purge, driven by message arrivals (the
        // daemon has no timer of its own): entries older than one period
        // are discarded. Over-eager settings cost recomputation only.
        if let Some(period) = self.config.log_purge_us {
            let now = net.now_us();
            if now.saturating_sub(self.last_purge_us) >= period {
                self.last_purge_us = now;
                let records = self.purge_log(now.saturating_sub(period));
                self.config.tracer.emit_with(|| TraceRecord {
                    time_us: now,
                    site: self.site.host.clone(),
                    query: None,
                    hop: None,
                    event: TraceEvent::Purge {
                        records: records as u32,
                    },
                });
            }
        }
        match msg {
            Message::Query(clone) => self.process_clone(net, clone),
            Message::Ack(ack) => self.on_ack(net, ack.id),
            Message::Fetch(req) => {
                // Plain web-server behaviour for the data-shipping
                // baseline: ship the whole document back to the requester.
                let html = match self.web.fetch(&req.url) {
                    FetchOutcome::Found { html, .. } => Some(html),
                    FetchOutcome::Deleted { .. } | FetchOutcome::Missing => None,
                };
                let reply = Message::FetchReply(FetchResponse {
                    url: req.url.clone(),
                    html,
                });
                let _ = net.send(&req.reply_to(), reply);
            }
            Message::Report(_) | Message::FetchReply(_) => {
                // Servers neither receive reports nor fetch replies.
            }
        }
    }

    /// Acknowledges the spawn-tree parent and disengages (ack-chain mode).
    fn disengage(&mut self, net: &mut dyn Network, id: &QueryId) {
        if let Some(state) = self.ack.get_mut(id) {
            if state.engaged && state.deficit == 0 {
                state.engaged = false;
                if let Some(parent) = state.parent.take() {
                    let _ = net.send(&parent, Message::Ack(AckMsg { id: id.clone() }));
                }
            }
        }
    }

    /// Handles a child's subtree-termination ack (ack-chain mode).
    fn on_ack(&mut self, net: &mut dyn Network, id: QueryId) {
        if let Some(state) = self.ack.get_mut(&id) {
            state.deficit = state.deficit.saturating_sub(1);
        }
        self.disengage(net, &id);
    }

    /// Emits the accumulated per-stage breakdown for the clone whose
    /// pipeline just finished, and resets the accumulator.
    fn emit_stage_spans(&mut self, net: &mut dyn Network, id: &QueryId, hop: u32) {
        let span = std::mem::take(&mut self.span);
        self.config.tracer.emit_with(|| TraceRecord {
            time_us: net.now_us(),
            site: self.site.host.clone(),
            query: Some(id.clone()),
            hop: Some(hop),
            event: TraceEvent::StageSpans {
                queue_us: span.queue_us,
                parse_us: span.parse_us,
                log_us: span.log_us,
                cache_us: span.cache_us,
                eval_us: span.eval_us,
                eval_probe_us: span.eval_probe_us,
                eval_scan_us: span.eval_scan_us,
                build_us: span.build_us,
                forward_us: span.forward_us,
            },
        });
    }

    /// The clone-processing pipeline (Figures 3 and 4).
    fn process_clone(&mut self, net: &mut dyn Network, clone: QueryClone) {
        self.stats.clones_received += 1;
        // Living-web invalidation: if this site's content version moved
        // since the last clone, the answer cache's rows may no longer be
        // derivable from the current documents — flush it before any
        // lookup. (The footnote-3 doc cache is validated per-hit instead,
        // so builds of untouched documents survive the bump.) `None` on a
        // frozen web: the historical paths pay nothing.
        if let Some(version) = self.web.live_site_version(&self.site.host) {
            if version != self.seen_site_version {
                self.seen_site_version = version;
                self.stats.cache_invalidations += 1;
                self.invalidate_cache();
            }
        }
        self.span = StageAccum::default();
        // Backpressure attribution: how long this clone's message sat in
        // the inbound queue before the pipeline started.
        self.span.queue_us = net.queue_wait_us();
        self.config.tracer.emit_with(|| TraceRecord {
            time_us: net.now_us(),
            site: self.site.host.clone(),
            query: Some(clone.id.clone()),
            hop: Some(clone.hops),
            event: TraceEvent::QueryRecv {
                nodes: clone.dest_nodes.len() as u32,
            },
        });
        if let Some(monitor) = &self.config.monitor {
            monitor.clone_recv(&clone.id, &self.site.host, clone.stage_offset, clone.hops);
        }
        let ack_mode = self.config.completion == CompletionMode::AckChain;
        let sender = clone.ack_to();
        if self.purged.contains(&clone.id) || clone.stages.is_empty() {
            if ack_mode {
                // Even dead clones must be acknowledged, or the sender's
                // subtree never drains.
                let _ = net.send(
                    &sender,
                    Message::Ack(AckMsg {
                        id: clone.id.clone(),
                    }),
                );
            }
            // A dead clone still queued and was received: emit its
            // partial spans so `stage_us.queue_wait` counts the arrival
            // instead of silently dropping it.
            self.emit_stage_spans(net, &clone.id, clone.hops);
            return;
        }
        // Admission control: a clone of a query not yet in flight here is
        // refused outright when the site is full. The refusal is never
        // silent — every destination node is reported back as shed so the
        // user site clears its CHT entries (or, under ack chains, the
        // sender is released) and the query concludes with
        // `TermReason::Shed` instead of hanging.
        if let Some(policy) = self.config.admission {
            let now = net.now_us();
            if !self.active.contains_key(&clone.id) && self.active.len() >= policy.max_queries {
                self.stats.queries_shed += 1;
                let mut shed_nodes: Vec<Url> = Vec::new();
                let mut seen = BTreeSet::new();
                for node in &clone.dest_nodes {
                    let node = node.without_fragment();
                    if seen.insert(node.clone()) {
                        shed_nodes.push(node);
                    }
                }
                self.config.tracer.emit_with(|| TraceRecord {
                    time_us: now,
                    site: self.site.host.clone(),
                    query: Some(clone.id.clone()),
                    hop: Some(clone.hops),
                    event: TraceEvent::QueryShed {
                        nodes: shed_nodes.len() as u32,
                    },
                });
                let state = CloneState {
                    num_q: clone.stages.len() as u32,
                    rem_pre: clone.rem_pre.clone(),
                };
                let reports = shed_nodes
                    .into_iter()
                    .map(|node| NodeReport {
                        node,
                        state: state.clone(),
                        disposition: Disposition::Shed,
                        results: Vec::new(),
                        new_entries: Vec::new(),
                    })
                    .collect();
                let seq = self.next_report_seq(now);
                let _ = net.send(
                    &clone.id.reply_to(),
                    Message::Report(ResultReport {
                        id: clone.id.clone(),
                        origin: self.site.host.clone(),
                        seq,
                        reports,
                    }),
                );
                if ack_mode {
                    let _ = net.send(
                        &sender,
                        Message::Ack(AckMsg {
                            id: clone.id.clone(),
                        }),
                    );
                }
                // A shed clone was still received and queued: its partial
                // spans (queue wait, any purge/log work) must reach the
                // `stage_us` histograms or admission pressure is
                // systematically undercounted.
                self.emit_stage_spans(net, &clone.id, clone.hops);
                return;
            }
            self.active.insert(clone.id.clone(), now);
            // Admission occupancy: in-flight queries holding a slot at
            // this site, as a high-water gauge next to the queue-depth
            // gauges the transports raise.
            self.config.tracer.gauge_max(
                &format!("admission_occupancy.{}", self.site.host),
                self.active.len() as u64,
            );
            self.config
                .tracer
                .gauge_max("admission_occupancy_high_water", self.active.len() as u64);
        }
        // Dijkstra–Scholten engagement: the first clone of a query makes
        // the sender our parent; later clones are acked right after
        // processing.
        let engaging = if ack_mode {
            let state = self.ack.entry(clone.id.clone()).or_default();
            if state.engaged {
                false
            } else {
                state.engaged = true;
                state.parent = Some(sender.clone());
                true
            }
        } else {
            false
        };
        let user = clone.id.reply_to();
        let id = clone.id.clone();
        let stages = Arc::new(clone.stages);
        let offset = clone.stage_offset;
        let hops = clone.hops;

        let mut reports: Vec<NodeReport> = Vec::new();
        let mut queue: VecDeque<Arrival> = VecDeque::new();
        // Remote forwards keyed (site, state, stage index) → destination
        // node set: one clone message per key (optimization 4).
        let mut remote: BTreeMap<(SiteAddr, String, usize), (CloneState, BTreeSet<Url>)> =
            BTreeMap::new();
        // Global forward dedup across all arrivals of this message, so an
        // entry is announced at most once and its clone sent at most once.
        let mut seen_forward: BTreeSet<(Url, String, usize)> = BTreeSet::new();

        let hop_exceeded = hops >= self.config.max_hops;
        let mut seen_dest: BTreeSet<Url> = BTreeSet::new();
        for node in &clone.dest_nodes {
            let node = node.without_fragment();
            if !seen_dest.insert(node.clone()) {
                continue;
            }
            let state = CloneState {
                num_q: stages.len() as u32,
                rem_pre: clone.rem_pre.clone(),
            };
            if hop_exceeded {
                self.stats.hop_limit_drops += 1;
                reports.push(NodeReport {
                    node,
                    state,
                    disposition: Disposition::DeadEnd,
                    results: Vec::new(),
                    new_entries: Vec::new(),
                });
                continue;
            }
            self.admit(net, &id, hops, node, state, 0, &mut queue, &mut reports);
        }

        while let Some(arrival) = queue.pop_front() {
            self.stats.arrivals += 1;
            let (report, local) = self.process_arrival(
                net,
                &id,
                hops,
                &arrival,
                &stages,
                offset,
                &mut remote,
                &mut seen_forward,
            );
            reports.push(report);
            for (target, state, stage_idx) in local {
                self.stats.local_arrivals += 1;
                self.admit(
                    net,
                    &id,
                    hops,
                    target,
                    state,
                    stage_idx,
                    &mut queue,
                    &mut reports,
                );
            }
        }

        // Assemble the outgoing clone messages.
        let forward_t0 = net.now_us();
        let own_ack = query_server_addr(&self.site);
        let mut clones: Vec<(SiteAddr, QueryClone)> = Vec::new();
        for ((site, _, stage_idx), (state, dests)) in remote {
            let make = |dest_nodes: Vec<Url>| QueryClone {
                id: id.clone(),
                dest_nodes,
                rem_pre: state.rem_pre.clone(),
                stages: stages[stage_idx..].to_vec(),
                stage_offset: offset + stage_idx as u32,
                hops: hops + 1,
                ack_host: own_ack.host.clone(),
                ack_port: own_ack.port,
            };
            if self.config.batch_per_site {
                clones.push((site, make(dests.into_iter().collect())));
            } else {
                for dest in dests {
                    clones.push((site.clone(), make(vec![dest])));
                }
            }
        }
        self.span.forward_us += net.now_us().saturating_sub(forward_t0);

        if ack_mode {
            // Under ack chains no CHT travels: strip bookkeeping and only
            // ship reports that actually carry rows.
            for r in &mut reports {
                r.new_entries.clear();
            }
            reports.retain(|r| !r.results.is_empty());
        }
        if reports.is_empty() && clones.is_empty() && !ack_mode {
            self.emit_stage_spans(net, &id, hops);
            return; // everything dropped silently (paper mode)
        }

        // Section 2.7.1 ordering: ship (results, CHT) first; forward only
        // if the dispatch succeeded.
        let build_t0 = net.now_us();
        if !reports.is_empty() {
            let seq = self.next_report_seq(net.now_us());
            let report_msg = Message::Report(ResultReport {
                id: id.clone(),
                origin: self.site.host.clone(),
                seq,
                reports,
            });
            if net.send(&user, report_msg).is_err() {
                // Passive termination (Section 2.8): purge and stop.
                self.stats.terminated_queries += 1;
                self.config.tracer.emit_with(|| TraceRecord {
                    time_us: net.now_us(),
                    site: self.site.host.clone(),
                    query: Some(id.clone()),
                    hop: Some(hops),
                    event: TraceEvent::Termination {
                        reason: TermReason::Passive,
                    },
                });
                self.purged.insert(id.clone());
                self.log.purge_query(&id);
                self.active.remove(&id);
                self.span.build_us += net.now_us().saturating_sub(build_t0);
                self.emit_stage_spans(net, &id, hops);
                if ack_mode {
                    // Release the sender (and, transitively, the whole
                    // upstream tree) even though the query is dying.
                    let _ = net.send(&sender, Message::Ack(AckMsg { id }));
                }
                return;
            }
        }
        self.span.build_us += net.now_us().saturating_sub(build_t0);
        // Fan-out histogram: how many distinct sites this processing
        // forwarded to (0 when the traversal ended here).
        if self.config.tracer.enabled() {
            let fanout = clones
                .iter()
                .map(|(s, _)| &s.host)
                .collect::<BTreeSet<_>>()
                .len();
            self.config.tracer.observe("site_fanout", fanout as u64);
        }
        if let Some(monitor) = &self.config.monitor {
            let fanout = clones
                .iter()
                .map(|(s, _)| &s.host)
                .collect::<BTreeSet<_>>()
                .len();
            monitor.clone_sent(&id, fanout as u32);
        }
        let fanout_t0 = net.now_us();
        let mut failed: Vec<NodeReport> = Vec::new();
        for (site, qc) in clones {
            let state = qc.state();
            let dests = qc.dest_nodes.clone();
            let sent = net.send(&query_server_addr(&site), Message::Query(qc));
            if sent.is_ok() {
                self.config.tracer.emit_with(|| TraceRecord {
                    time_us: net.now_us(),
                    site: self.site.host.clone(),
                    query: Some(id.clone()),
                    hop: Some(hops + 1),
                    event: TraceEvent::QuerySent {
                        to_site: site.host.clone(),
                        nodes: dests.len() as u32,
                    },
                });
            }
            if ack_mode {
                if sent.is_ok() {
                    self.stats.clones_forwarded += 1;
                    self.ack.entry(id.clone()).or_default().deficit += 1;
                } else {
                    self.stats.unreachable_sites += 1;
                }
                continue;
            }
            if sent.is_err() {
                // No query server at the destination site (it does not
                // participate — Section 7.1). The announced entries must
                // not be left to dangle: in hybrid mode the nodes are
                // handed back to the user site for centralized
                // processing; otherwise they are reported as dead ends.
                self.stats.unreachable_sites += 1;
                let disposition = if self.config.hybrid {
                    Disposition::Handoff
                } else {
                    Disposition::DeadEnd
                };
                for dest in dests {
                    failed.push(NodeReport {
                        node: dest,
                        state: state.clone(),
                        disposition,
                        results: Vec::new(),
                        new_entries: Vec::new(),
                    });
                }
            } else {
                self.stats.clones_forwarded += 1;
            }
        }
        if !failed.is_empty() {
            let seq = self.next_report_seq(net.now_us());
            let _ = net.send(
                &user,
                Message::Report(ResultReport {
                    id: id.clone(),
                    origin: self.site.host.clone(),
                    seq,
                    reports: failed,
                }),
            );
        }
        self.span.forward_us += net.now_us().saturating_sub(fanout_t0);
        self.emit_stage_spans(net, &id, hops);
        if ack_mode {
            if !engaging {
                // A non-engagement clone: ack its sender right away (the
                // work it spawned counts against *our* engagement).
                let _ = net.send(&sender, Message::Ack(AckMsg { id: id.clone() }));
            } else {
                // If nothing was forwarded, this subtree is already done.
                self.disengage(net, &id);
            }
        }
    }

    /// Runs one arrival through the log table; admitted arrivals join the
    /// processing queue, duplicates are dropped. Drops are reported in
    /// strict CHT mode, and — in any mode — when the matching log record
    /// is a stage continuation the user's CHT never saw (the user cannot
    /// mirror such drops, so silence would leave its entry uncleared).
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        net: &mut dyn Network,
        id: &QueryId,
        hop: u32,
        node: Url,
        state: CloneState,
        stage_idx: usize,
        queue: &mut VecDeque<Arrival>,
        reports: &mut Vec<NodeReport>,
    ) {
        let log_t0 = net.now_us();
        let outcome = self
            .log
            .check(self.config.log_mode, id, &node, &state, true, log_t0);
        self.span.log_us += net.now_us().saturating_sub(log_t0);
        match outcome {
            LogOutcome::Drop { hidden, exact } => {
                self.stats.duplicates_dropped += 1;
                self.config.tracer.emit_with(|| TraceRecord {
                    time_us: net.now_us(),
                    site: self.site.host.clone(),
                    query: Some(id.clone()),
                    hop: Some(hop),
                    event: TraceEvent::LogDuplicate {
                        node: node.to_string(),
                        exact,
                    },
                });
                // Silence is only safe for exact-state duplicates dropped
                // via CHT-visible records: that verdict is symmetric, so
                // the user's skip rule mirrors it under any merge order.
                if self.config.cht_mode == ChtMode::Strict || hidden || !exact {
                    reports.push(NodeReport {
                        node,
                        state,
                        disposition: Disposition::Duplicate,
                        results: Vec::new(),
                        new_entries: Vec::new(),
                    });
                }
            }
            LogOutcome::Process { pre, rewritten } => {
                if rewritten {
                    self.stats.rewrites += 1;
                    self.config.tracer.emit_with(|| TraceRecord {
                        time_us: net.now_us(),
                        site: self.site.host.clone(),
                        query: Some(id.clone()),
                        hop: Some(hop),
                        event: TraceEvent::LogRewrite {
                            node: node.to_string(),
                        },
                    });
                }
                queue.push_back(Arrival {
                    node,
                    effective_pre: pre,
                    announced_state: state,
                    stage_idx,
                    rewritten,
                });
            }
        }
    }

    /// Processes one arrival at one node: evaluation, continuation, and
    /// forward generation (Figure 4's `process`).
    #[allow(clippy::too_many_arguments)]
    fn process_arrival(
        &mut self,
        net: &mut dyn Network,
        id: &QueryId,
        hop: u32,
        arrival: &Arrival,
        stages: &Arc<Vec<webdis_disql::Stage>>,
        offset: u32,
        remote: &mut BTreeMap<(SiteAddr, String, usize), (CloneState, BTreeSet<Url>)>,
        seen_forward: &mut BTreeSet<(Url, String, usize)>,
    ) -> (NodeReport, Vec<(Url, CloneState, usize)>) {
        let db = match self.node_db(net, &arrival.node) {
            NodeLookup::Found(db) => db,
            NodeLookup::Deleted(version) => {
                // Link rot: the page was deleted after the link pointing
                // here was followed. The branch terminates gracefully —
                // an explicit dead-link report clears the CHT entry, so
                // the query completes (never hangs) and ships no phantom
                // rows from the vanished revision.
                self.stats.dead_links += 1;
                self.stats.dead_ends += 1;
                self.config.tracer.emit_with(|| TraceRecord {
                    time_us: net.now_us(),
                    site: self.site.host.clone(),
                    query: Some(id.clone()),
                    hop: Some(hop),
                    event: TraceEvent::DeadLink {
                        node: arrival.node.to_string(),
                        version,
                    },
                });
                return (
                    NodeReport {
                        node: arrival.node.clone(),
                        state: arrival.announced_state.clone(),
                        disposition: Disposition::DeadLink,
                        results: Vec::new(),
                        new_entries: Vec::new(),
                    },
                    Vec::new(),
                );
            }
            NodeLookup::Missing => {
                // A floating link pointed here: nothing to process.
                self.stats.missing_docs += 1;
                self.stats.dead_ends += 1;
                return (
                    NodeReport {
                        node: arrival.node.clone(),
                        state: arrival.announced_state.clone(),
                        disposition: Disposition::DeadEnd,
                        results: Vec::new(),
                        new_entries: Vec::new(),
                    },
                    Vec::new(),
                );
            }
        };

        let eval_t0 = net.now_us();
        let now_fn = || net.now_us();
        let out = traverse_node(
            &db,
            &arrival.node,
            stages,
            offset,
            arrival.effective_pre.clone(),
            arrival.stage_idx,
            &mut self.log,
            self.config.log_mode,
            id,
            eval_t0,
            &TraceCtx {
                tracer: &self.config.tracer,
                site: &self.site.host,
                hop: Some(hop),
                now: &now_fn,
                eval_cost_us: self.config.proc.eval_us,
            },
            self.cache.as_mut(),
        );
        self.stats.evaluations += out.counters.evaluations;
        net.work(self.config.proc.eval_us * out.counters.evaluations);
        // Cache consults are charged their own (sub-eval) modeled cost;
        // served evaluations never pay `proc.eval_us` — that skip is the
        // entire win.
        if let Some(cache) = &self.cache {
            let lookup_cost = cache.policy().lookup_us * out.counters.cache_lookups;
            net.work(lookup_cost);
            self.span.cache_us += out.counters.cache_wall_us + lookup_cost;
        }
        self.span.eval_us += net
            .now_us()
            .saturating_sub(eval_t0)
            .saturating_sub(out.counters.cache_wall_us)
            + self.config.proc.eval_us * out.counters.evaluations;
        self.span.eval_probe_us +=
            out.counters.probe_wall_us + self.config.proc.eval_us * out.counters.probed_evals;
        self.span.eval_scan_us +=
            out.counters.scan_wall_us + self.config.proc.eval_us * out.counters.scanned_evals;
        self.stats.eval_errors += out.counters.eval_errors;
        self.stats.duplicates_dropped += out.counters.duplicates_dropped;
        self.stats.rewrites += out.counters.rewrites;
        self.stats.cache_hits += out.counters.cache_hits;
        self.stats.cache_misses += out.counters.cache_misses;
        self.stats.cache_evictions += out.counters.cache_evictions;

        // Dedupe forwards across the whole message, split local vs remote,
        // and announce each one exactly once.
        let mut new_entries: Vec<ChtEntry> = Vec::new();
        let mut local: Vec<(Url, CloneState, usize)> = Vec::new();
        for (target, state, idx) in out.forwards {
            let state_key = format!("{state}");
            if !seen_forward.insert((target.clone(), state_key.clone(), idx)) {
                continue;
            }
            new_entries.push(ChtEntry {
                node: target.clone(),
                state: state.clone(),
            });
            self.config.tracer.emit_with(|| TraceRecord {
                time_us: net.now_us(),
                site: self.site.host.clone(),
                query: Some(id.clone()),
                hop: Some(hop),
                event: TraceEvent::ChtAdd {
                    node: target.to_string(),
                },
            });
            if self.config.local_forwarding && target.site() == self.site {
                local.push((target, state, idx));
            } else {
                remote
                    .entry((target.site(), state_key, idx))
                    .or_insert_with(|| (state.clone(), BTreeSet::new()))
                    .1
                    .insert(target);
            }
        }

        // An arrival that answered is a ServerRouter hit; one that only
        // forwarded (including a failed evaluation with a residual PRE
        // still to follow) is a router; one with nothing to do is a dead
        // end.
        let disposition = if arrival.rewritten {
            Disposition::Rewritten
        } else if out.any_answer {
            Disposition::Answered
        } else if new_entries.is_empty() {
            Disposition::DeadEnd
        } else {
            Disposition::PureRouted
        };
        match disposition {
            Disposition::Answered => self.stats.answered += 1,
            Disposition::DeadEnd => self.stats.dead_ends += 1,
            _ => {}
        }

        (
            NodeReport {
                node: arrival.node.clone(),
                state: arrival.announced_state.clone(),
                disposition,
                results: out.results,
                new_entries,
            },
            local,
        )
    }
}

/// Trace-stamp context for [`traverse_node`]: where the traversal runs
/// and at which hop, so its events land on the right visit of the
/// shipping tree. `hop` is `None` for the hybrid user-site fallback,
/// which processes handed-off nodes outside any clone hop count.
pub(crate) struct TraceCtx<'a> {
    pub(crate) tracer: &'a TraceHandle,
    pub(crate) site: &'a str,
    pub(crate) hop: Option<u32>,
    /// Live clock for begin/end span stamps (the fixed `now_us`
    /// argument keeps log-table timestamps deterministic; spans want
    /// the advancing wall clock on TCP).
    pub(crate) now: &'a dyn Fn() -> u64,
    /// Modeled processor cost charged per evaluation, folded into each
    /// `EvalFinish` span (the sim clock is frozen inside a handler, so
    /// the modeled cost is the only duration there).
    pub(crate) eval_cost_us: u64,
}

impl TraceCtx<'_> {
    fn emit(&self, time_us: u64, id: &QueryId, event: TraceEvent) {
        self.tracer.emit_with(|| TraceRecord {
            time_us,
            site: self.site.to_string(),
            query: Some(id.clone()),
            hop: self.hop,
            event,
        });
    }
}

/// Counters produced by one node traversal.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TraverseCounters {
    pub(crate) evaluations: u64,
    /// Evaluations whose plan was served by at least one index probe
    /// (`probed_evals + scanned_evals == evaluations`; a failed
    /// evaluation counts as scanned).
    pub(crate) probed_evals: u64,
    pub(crate) scanned_evals: u64,
    /// Observed wall-clock µs inside probe-served evaluations (zero on
    /// the simulator, whose clock is frozen inside a handler).
    pub(crate) probe_wall_us: u64,
    pub(crate) scan_wall_us: u64,
    pub(crate) eval_errors: u64,
    pub(crate) duplicates_dropped: u64,
    pub(crate) rewrites: u64,
    /// Answer-cache consults (hit or miss; zero when the cache is off).
    pub(crate) cache_lookups: u64,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) cache_evictions: u64,
    /// Observed wall-clock µs inside cache lookups and insertions (zero
    /// on the simulator, whose clock is frozen inside a handler).
    pub(crate) cache_wall_us: u64,
}

/// The outcome of one node traversal.
pub(crate) struct TraverseOutcome {
    /// Result rows per evaluated stage.
    pub(crate) results: Vec<StageRows>,
    /// Forward candidates `(target, arrival state, stage index)` in
    /// discovery order — *not* deduplicated; the caller owns that.
    pub(crate) forwards: Vec<(Url, CloneState, usize)>,
    /// True when at least one node-query answered here.
    pub(crate) any_answer: bool,
    /// Work counters.
    pub(crate) counters: TraverseCounters,
}

/// The per-node processing core (Figure 4's `process`), shared by the
/// distributed query server and by the hybrid user-site fallback: evaluate
/// the pending node-query wherever the remaining PRE contains the null
/// link, stack same-node continuations for later stages (each gated by the
/// log table as a CHT-invisible state), and derive the forward set from
/// the PRE's first-symbols.
#[allow(clippy::too_many_arguments)]
pub(crate) fn traverse_node(
    db: &NodeDb,
    node: &Url,
    stages: &[webdis_disql::Stage],
    offset: u32,
    start_pre: Pre,
    start_idx: usize,
    log: &mut LogTable,
    log_mode: crate::config::LogMode,
    id: &QueryId,
    now_us: u64,
    trace: &TraceCtx<'_>,
    mut cache: Option<&mut AnswerCache>,
) -> TraverseOutcome {
    let mut out = TraverseOutcome {
        results: Vec::new(),
        forwards: Vec::new(),
        any_answer: false,
        counters: TraverseCounters::default(),
    };
    // Work items: (remaining PRE, stage index). Continuations at the same
    // node (Figure 1's "node 4 acts twice") stack up here.
    let mut work: Vec<(Pre, usize)> = vec![(start_pre, start_idx)];
    while let Some((pre, idx)) = work.pop() {
        if pre.nullable() {
            // The PRE contains the null link: the pending node-query is
            // answered here — from the answer cache when it can serve
            // it, by evaluation otherwise.
            let query = &stages[idx].query;
            let mut served: Option<Vec<ResultRow>> = None;
            let mut pending_insert = None;
            if let Some(c) = cache.as_deref_mut() {
                let cache_t0 = (trace.now)();
                let cq = canonicalize(query);
                out.counters.cache_lookups += 1;
                let node_str = node.to_string();
                match c.lookup(db, &node_str, query, &cq) {
                    CacheLookup::Exact(rows) => {
                        out.counters.cache_hits += 1;
                        trace.emit(
                            now_us,
                            id,
                            TraceEvent::CacheHit {
                                node: node_str,
                                subsumed: false,
                                rows: rows.len() as u32,
                            },
                        );
                        served = Some(rows);
                    }
                    CacheLookup::Subsumed(rows) => {
                        out.counters.cache_hits += 1;
                        trace.emit(
                            now_us,
                            id,
                            TraceEvent::CacheHit {
                                node: node_str,
                                subsumed: true,
                                rows: rows.len() as u32,
                            },
                        );
                        served = Some(rows);
                    }
                    CacheLookup::Miss => {
                        out.counters.cache_misses += 1;
                        trace.emit(now_us, id, TraceEvent::CacheMiss { node: node_str });
                        pending_insert = Some(cq);
                    }
                }
                out.counters.cache_wall_us += (trace.now)().saturating_sub(cache_t0);
            }
            let rows = if let Some(rows) = served {
                // Cache hit: no evaluation happens (and none is charged)
                // — the rows are identical to what evaluation would
                // produce, values and order.
                rows
            } else {
                out.counters.evaluations += 1;
                trace.emit(
                    now_us,
                    id,
                    TraceEvent::EvalStart {
                        node: node.to_string(),
                        stage: offset + idx as u32,
                    },
                );
                let eval_t0 = (trace.now)();
                // Bindings are captured only when there is a cache to
                // feed; the uncached engine runs the exact historical
                // evaluator.
                let evaluated = if pending_insert.is_some() {
                    eval_node_query_with_bindings(db, query)
                        .map(|(rows, bindings, stats)| (rows, Some(bindings), stats))
                } else {
                    eval_node_query_with_stats(db, query).map(|(rows, stats)| (rows, None, stats))
                };
                let eval_wall = (trace.now)().saturating_sub(eval_t0);
                // Probe-vs-scan attribution: a failed evaluation counts as
                // scanned (it never reached an index).
                match &evaluated {
                    Ok((_, _, stats)) if stats.used_index => {
                        out.counters.probed_evals += 1;
                        out.counters.probe_wall_us += eval_wall;
                    }
                    _ => {
                        out.counters.scanned_evals += 1;
                        out.counters.scan_wall_us += eval_wall;
                    }
                }
                if let Ok((rows, _, _)) = &evaluated {
                    trace.emit(
                        now_us,
                        id,
                        TraceEvent::EvalFinish {
                            node: node.to_string(),
                            stage: offset + idx as u32,
                            rows: rows.len() as u32,
                            answered: !rows.is_empty(),
                            span_us: eval_wall + trace.eval_cost_us,
                        },
                    );
                }
                match evaluated {
                    Err(_) => {
                        out.counters.eval_errors += 1;
                        continue;
                    }
                    Ok((rows, bindings, stats)) => {
                        if let (Some(cq), Some(c)) = (pending_insert.take(), cache.as_deref_mut()) {
                            let insert_t0 = (trace.now)();
                            let evicted = c.insert(
                                &node.to_string(),
                                &cq,
                                rows.clone(),
                                bindings.unwrap_or_default(),
                                stats.tuples_visited,
                            );
                            out.counters.cache_evictions += evicted.len() as u64;
                            for ev in evicted {
                                trace.emit(
                                    now_us,
                                    id,
                                    TraceEvent::CacheEvict {
                                        node: ev.node,
                                        bytes: ev.bytes as u32,
                                        resident_bytes: c.resident_bytes() as u32,
                                    },
                                );
                            }
                            trace.tracer.gauge_max("cache.bytes", c.resident_bytes());
                            trace.tracer.gauge_max(
                                &format!("cache.bytes.{}", trace.site),
                                c.resident_bytes(),
                            );
                            out.counters.cache_wall_us += (trace.now)().saturating_sub(insert_t0);
                        }
                        rows
                    }
                }
            };
            if rows.is_empty() {
                // Unsuccessful node-query: this node contributes no
                // answer and no next-stage continuation — but the
                // clone still travels on along the residual PRE.
                // (Figure 4's literal lines 3-4 would stop here
                // entirely, which contradicts the paper's own
                // Section 5 execution, where conveners one local
                // link past a failing lab homepage are found under
                // G·(L*1); a node is a dead end only when it also
                // has no matching links.)
            } else {
                out.any_answer = true;
                out.results.push(StageRows {
                    stage: offset + idx as u32,
                    rows,
                });
                if idx + 1 < stages.len() {
                    // Continue at this same node with the next PRE;
                    // the continuation state goes through the log
                    // table like any other arrival.
                    let cont = CloneState {
                        num_q: (stages.len() - idx - 1) as u32,
                        rem_pre: stages[idx + 1].pre.clone(),
                    };
                    match log.check(
                        log_mode, id, node, &cont,
                        false, // continuations are invisible to the CHT
                        now_us,
                    ) {
                        LogOutcome::Drop { exact, .. } => {
                            out.counters.duplicates_dropped += 1;
                            trace.emit(
                                now_us,
                                id,
                                TraceEvent::LogDuplicate {
                                    node: node.to_string(),
                                    exact,
                                },
                            );
                        }
                        LogOutcome::Process {
                            pre: cont_pre,
                            rewritten,
                        } => {
                            if rewritten {
                                out.counters.rewrites += 1;
                            }
                            trace.emit(
                                now_us,
                                id,
                                TraceEvent::StageTransition {
                                    node: node.to_string(),
                                    from_stage: offset + idx as u32,
                                    to_stage: offset + idx as u32 + 1,
                                },
                            );
                            work.push((cont_pre, idx + 1));
                        }
                    }
                }
            }
        }
        // Forward along every link type in the PRE's first-set.
        for t in pre.first().iter() {
            let derived = pre.deriv(t);
            if derived.is_never() {
                continue;
            }
            let state = CloneState {
                num_q: (stages.len() - idx) as u32,
                rem_pre: derived.clone(),
            };
            for link in db.links_of_type(t) {
                let target = link.href.without_fragment();
                out.forwards.push((target, state.clone(), idx));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RecordingNetwork;
    use webdis_net::FetchRequest;
    use webdis_web::{HostedWeb, PageBuilder};

    fn web() -> Arc<HostedWeb> {
        let mut web = HostedWeb::new();
        web.insert_page(
            "http://a.test/",
            PageBuilder::new("Alpha needle")
                .para("alpha body")
                .link("/sub.html", "local")
                .link("http://b.test/", "global"),
        );
        web.insert_page("http://a.test/sub.html", PageBuilder::new("Sub needle"));
        web.insert_page("http://b.test/", PageBuilder::new("Beta"));
        Arc::new(web)
    }

    fn site(h: &str) -> SiteAddr {
        SiteAddr {
            host: h.into(),
            port: 80,
        }
    }

    fn qid() -> QueryId {
        QueryId {
            user: "t".into(),
            host: "user.test".into(),
            port: 9,
            query_num: 7,
        }
    }

    fn clone_msg(pre: &str, dests: &[&str]) -> QueryClone {
        let q = webdis_disql::parse_disql(&format!(
            r#"select d.url from document d such that "http://a.test/" {pre} d
               where d.title contains "needle""#
        ))
        .unwrap();
        QueryClone {
            id: qid(),
            dest_nodes: dests.iter().map(|d| Url::parse(d).unwrap()).collect(),
            rem_pre: q.stages[0].pre.clone(),
            stages: q.stages,
            stage_offset: 0,
            hops: 0,
            ack_host: "user.test".into(),
            ack_port: 9,
        }
    }

    fn server() -> ServerEngine {
        ServerEngine::new(site("a.test"), web(), EngineConfig::default())
    }

    fn cached_server() -> ServerEngine {
        let cfg = EngineConfig {
            cache: Some(webdis_cache::CachePolicy::default()),
            ..EngineConfig::default()
        };
        ServerEngine::new(site("a.test"), web(), cfg)
    }

    /// Sends one clone of a fresh query (`num`) and returns the node
    /// reports it shipped (the user-visible outcome, minus the per-send
    /// sequence number).
    fn run_query(s: &mut ServerEngine, num: u64) -> Vec<NodeReport> {
        let mut net = RecordingNetwork::default();
        let mut c = clone_msg("L*", &["http://a.test/"]);
        c.id.query_num = num;
        s.on_message(&mut net, Message::Query(c));
        net.sent
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Report(r) => Some(r.reports.clone()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn answer_cache_serves_repeat_queries_with_identical_reports() {
        let mut cached = cached_server();
        let mut uncached = server();

        let first = run_query(&mut cached, 1);
        let evals_after_first = cached.stats.evaluations;
        assert!(cached.stats.cache_misses > 0);
        assert_eq!(cached.stats.cache_hits, 0);

        let second = run_query(&mut cached, 2);
        assert_eq!(
            cached.stats.evaluations, evals_after_first,
            "an identical follow-up query must be served without evaluation"
        );
        assert!(cached.stats.cache_hits > 0);

        // The cached engine's reports match the uncached engine's exactly
        // — rows, order, dispositions, CHT entries.
        assert_eq!(first, run_query(&mut uncached, 1));
        assert_eq!(second, run_query(&mut uncached, 2));
        assert_eq!(first, second);
    }

    #[test]
    fn restart_leaves_the_answer_cache_cold() {
        let mut s = cached_server();
        run_query(&mut s, 1);
        let misses = s.stats.cache_misses;
        assert!(s.cache_resident_bytes().unwrap() > 0);

        s.restart();
        assert_eq!(s.cache_resident_bytes(), Some(0));
        let rows = run_query(&mut s, 2);
        assert_eq!(s.stats.cache_hits, 0, "cold cache recomputes");
        assert!(s.stats.cache_misses > misses);
        assert_eq!(rows, run_query(&mut server(), 2));
    }

    #[test]
    fn cache_invalidation_forces_recomputation() {
        let mut s = cached_server();
        let first = run_query(&mut s, 1);
        s.invalidate_cache();
        let evals = s.stats.evaluations;
        let second = run_query(&mut s, 2);
        assert_eq!(s.stats.cache_hits, 0, "invalidated entries cannot serve");
        assert!(s.stats.evaluations > evals);
        assert_eq!(first, second);
        // A third run hits the re-inserted entries.
        run_query(&mut s, 3);
        assert!(s.stats.cache_hits > 0);
    }

    #[test]
    fn report_is_sent_before_clones() {
        // Section 2.7.1 ordering: the (results, CHT) report must precede
        // any forwarded clone.
        let mut net = RecordingNetwork::default();
        let mut s = server();
        s.on_message(
            &mut net,
            Message::Query(clone_msg("(L|G)*", &["http://a.test/"])),
        );
        assert!(net.sent.len() >= 2);
        assert!(matches!(net.sent[0].1, Message::Report(_)), "report first");
        assert!(net
            .sent
            .iter()
            .skip(1)
            .all(|(_, m)| matches!(m, Message::Query(_))));
        // The clone to b.test goes to its query daemon address.
        assert_eq!(net.sent[1].0, query_server_addr(&site("b.test")));
    }

    #[test]
    fn local_destinations_fold_into_one_report() {
        let mut net = RecordingNetwork::default();
        let mut s = server();
        s.on_message(
            &mut net,
            Message::Query(clone_msg("L*", &["http://a.test/"])),
        );
        // Both a.test documents processed in one message: one report with
        // two node reports, no clone to a.test itself.
        let Message::Report(report) = &net.sent[0].1 else {
            panic!()
        };
        assert_eq!(report.reports.len(), 2);
        assert!(net
            .sent
            .iter()
            .all(|(to, _)| to != &query_server_addr(&site("a.test"))));
        assert_eq!(s.stats.local_arrivals, 1);
    }

    #[test]
    fn failed_report_dispatch_purges_query() {
        let mut net = RecordingNetwork {
            unreachable: vec![site("user.test")],
            ..RecordingNetwork::default()
        };
        net.unreachable[0].port = 9; // the reply endpoint
        let mut s = server();
        s.on_message(
            &mut net,
            Message::Query(clone_msg("(L|G)*", &["http://a.test/"])),
        );
        assert!(
            net.sent.is_empty(),
            "nothing forwarded after a failed report"
        );
        assert_eq!(s.stats.terminated_queries, 1);
        // Subsequent clones of the same query are dropped outright.
        let mut net2 = RecordingNetwork::default();
        s.on_message(
            &mut net2,
            Message::Query(clone_msg("(L|G)*", &["http://a.test/sub.html"])),
        );
        assert!(net2.sent.is_empty());
        assert_eq!(s.log_len(), 0, "log purged for the terminated query");
    }

    #[test]
    fn hop_limit_reports_dead_ends() {
        let mut net = RecordingNetwork::default();
        let cfg = EngineConfig {
            max_hops: 2,
            ..EngineConfig::default()
        };
        let mut s = ServerEngine::new(site("a.test"), web(), cfg);
        let mut clone = clone_msg("(L|G)*", &["http://a.test/"]);
        clone.hops = 2;
        s.on_message(&mut net, Message::Query(clone));
        let Message::Report(report) = &net.sent[0].1 else {
            panic!()
        };
        assert_eq!(report.reports.len(), 1);
        assert_eq!(report.reports[0].disposition, Disposition::DeadEnd);
        assert_eq!(s.stats.hop_limit_drops, 1);
        assert_eq!(s.stats.arrivals, 0, "nothing was processed");
    }

    #[test]
    fn unreachable_forward_reports_dead_end_or_handoff() {
        // b.test's daemon is unreachable.
        let mut net = RecordingNetwork {
            unreachable: vec![query_server_addr(&site("b.test"))],
            ..RecordingNetwork::default()
        };
        let mut s = server();
        s.on_message(
            &mut net,
            Message::Query(clone_msg("(L|G)*", &["http://a.test/"])),
        );
        // Two reports: the processing report, then the supplementary one
        // clearing the b.test entry.
        let reports: Vec<_> = net
            .sent
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Report(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[1].reports[0].disposition, Disposition::DeadEnd);
        assert_eq!(s.stats.unreachable_sites, 1);

        // In hybrid mode the same situation hands off instead.
        let mut net = RecordingNetwork {
            unreachable: vec![query_server_addr(&site("b.test"))],
            ..RecordingNetwork::default()
        };
        let cfg = EngineConfig {
            hybrid: true,
            ..EngineConfig::default()
        };
        let mut s = ServerEngine::new(site("a.test"), web(), cfg);
        s.on_message(
            &mut net,
            Message::Query(clone_msg("(L|G)*", &["http://a.test/"])),
        );
        let reports: Vec<_> = net
            .sent
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Report(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(reports[1].reports[0].disposition, Disposition::Handoff);
    }

    #[test]
    fn missing_document_is_dead_end_report() {
        let mut net = RecordingNetwork::default();
        let mut s = server();
        s.on_message(
            &mut net,
            Message::Query(clone_msg("(L|G)*", &["http://a.test/nonexistent.html"])),
        );
        let Message::Report(report) = &net.sent[0].1 else {
            panic!()
        };
        assert_eq!(report.reports[0].disposition, Disposition::DeadEnd);
        assert_eq!(s.stats.missing_docs, 1);
    }

    #[test]
    fn duplicate_dest_nodes_processed_once() {
        let mut net = RecordingNetwork::default();
        let mut s = server();
        s.on_message(
            &mut net,
            Message::Query(clone_msg("(L|G)*", &["http://a.test/", "http://a.test/"])),
        );
        let Message::Report(report) = &net.sent[0].1 else {
            panic!()
        };
        let own: Vec<_> = report
            .reports
            .iter()
            .filter(|r| r.node == Url::parse("http://a.test/").unwrap())
            .collect();
        assert_eq!(own.len(), 1);
    }

    #[test]
    fn serves_fetch_requests() {
        let mut net = RecordingNetwork::default();
        let mut s = server();
        s.on_message(
            &mut net,
            Message::Fetch(FetchRequest {
                url: Url::parse("http://a.test/").unwrap(),
                reply_host: "user.test".into(),
                reply_port: 9,
            }),
        );
        let Message::FetchReply(reply) = &net.sent[0].1 else {
            panic!()
        };
        assert!(reply.html.as_ref().unwrap().contains("Alpha needle"));
        // Missing documents answer with None rather than silence.
        s.on_message(
            &mut net,
            Message::Fetch(FetchRequest {
                url: Url::parse("http://a.test/gone").unwrap(),
                reply_host: "user.test".into(),
                reply_port: 9,
            }),
        );
        let Message::FetchReply(reply) = &net.sent[1].1 else {
            panic!()
        };
        assert!(reply.html.is_none());
    }

    #[test]
    fn unbatched_config_sends_one_clone_per_node() {
        let mut webx = HostedWeb::new();
        webx.insert_page(
            "http://a.test/",
            PageBuilder::new("Alpha needle")
                .link("http://b.test/x", "bx")
                .link("http://b.test/y", "by"),
        );
        webx.insert_page("http://b.test/x", PageBuilder::new("BX"));
        webx.insert_page("http://b.test/y", PageBuilder::new("BY"));
        let webx = Arc::new(webx);

        let count_clones = |batch: bool| {
            let mut net = RecordingNetwork::default();
            let cfg = EngineConfig {
                batch_per_site: batch,
                ..EngineConfig::default()
            };
            let mut s = ServerEngine::new(site("a.test"), Arc::clone(&webx), cfg);
            s.on_message(
                &mut net,
                Message::Query(clone_msg("(L|G)*", &["http://a.test/"])),
            );
            net.sent
                .iter()
                .filter(|(_, m)| matches!(m, Message::Query(_)))
                .count()
        };
        assert_eq!(count_clones(true), 1, "one clone for both b.test nodes");
        assert_eq!(count_clones(false), 2, "one clone per node");
    }

    #[test]
    fn admission_sheds_new_queries_when_full() {
        use crate::config::AdmissionPolicy;
        let mut net = RecordingNetwork::default();
        let cfg = EngineConfig {
            admission: Some(AdmissionPolicy { max_queries: 1 }),
            ..EngineConfig::default()
        };
        let mut s = ServerEngine::new(site("a.test"), web(), cfg);
        s.on_message(
            &mut net,
            Message::Query(clone_msg("(L|G)*", &["http://a.test/"])),
        );
        assert_eq!(s.active_queries(), 1);
        // A second query arrives while the first still holds the slot: it
        // is refused, with one Shed report per destination node.
        let mut other = clone_msg("(L|G)*", &["http://a.test/sub.html"]);
        other.id.query_num = 8;
        let before = net.sent.len();
        s.on_message(&mut net, Message::Query(other));
        assert_eq!(s.stats.queries_shed, 1);
        assert_eq!(s.stats.arrivals, 2, "the shed clone was not processed");
        let Message::Report(report) = &net.sent[before].1 else {
            panic!()
        };
        assert_eq!(report.reports.len(), 1);
        assert_eq!(report.reports[0].disposition, Disposition::Shed);
        assert!(report.reports[0].results.is_empty());
        // A purge sweep past the first query's last arrival retires its
        // slot; the next query admits.
        s.purge_log(1);
        assert_eq!(s.active_queries(), 0);
        let mut again = clone_msg("(L|G)*", &["http://a.test/sub.html"]);
        again.id.query_num = 9;
        s.on_message(&mut net, Message::Query(again));
        assert_eq!(s.stats.queries_shed, 1, "admitted after retirement");
        assert_eq!(s.active_queries(), 1);
    }

    #[test]
    fn empty_stage_clone_ignored() {
        let mut net = RecordingNetwork::default();
        let mut s = server();
        let mut clone = clone_msg("L*", &["http://a.test/"]);
        clone.stages.clear();
        s.on_message(&mut net, Message::Query(clone));
        assert!(net.sent.is_empty());
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::network::RecordingNetwork;
    use webdis_web::{HostedWeb, PageBuilder};

    fn cached_server(size: usize) -> ServerEngine {
        let mut web = HostedWeb::new();
        web.insert_page(
            "http://c.test/",
            PageBuilder::new("Root needle").link("/a.html", "a"),
        );
        web.insert_page("http://c.test/a.html", PageBuilder::new("A needle"));
        let cfg = EngineConfig {
            doc_cache_size: size,
            ..EngineConfig::default()
        };
        ServerEngine::new(
            SiteAddr {
                host: "c.test".into(),
                port: 80,
            },
            Arc::new(web),
            cfg,
        )
    }

    fn query_for(n: u64) -> QueryClone {
        let q = webdis_disql::parse_disql(
            r#"select d.url from document d such that "http://c.test/" L* d
               where d.title contains "needle""#,
        )
        .unwrap();
        QueryClone {
            id: QueryId {
                user: "t".into(),
                host: "u.test".into(),
                port: 9,
                query_num: n,
            },
            dest_nodes: q.start_nodes.clone(),
            rem_pre: q.stages[0].pre.clone(),
            stages: q.stages,
            stage_offset: 0,
            hops: 0,
            ack_host: "u.test".into(),
            ack_port: 9,
        }
    }

    #[test]
    fn cache_disabled_reparses_per_query() {
        let mut s = cached_server(0);
        let mut net = RecordingNetwork::default();
        s.on_message(&mut net, Message::Query(query_for(1)));
        s.on_message(&mut net, Message::Query(query_for(2)));
        assert_eq!(s.stats.docs_parsed, 4, "2 docs x 2 queries");
        assert_eq!(s.stats.doc_cache_hits, 0);
    }

    #[test]
    fn cache_serves_repeat_queries() {
        let mut s = cached_server(8);
        let mut net = RecordingNetwork::default();
        s.on_message(&mut net, Message::Query(query_for(1)));
        s.on_message(&mut net, Message::Query(query_for(2)));
        s.on_message(&mut net, Message::Query(query_for(3)));
        assert_eq!(s.stats.docs_parsed, 2, "each doc parsed once");
        assert_eq!(s.stats.doc_cache_hits, 4);
        // Results are identical either way: the second query's report
        // matches the first's rows.
        let reports: Vec<_> = net
            .sent
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Report(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(reports.len(), 3);
        let rows = |r: &ResultReport| -> usize {
            r.reports
                .iter()
                .map(|nr| nr.results.iter().map(|s| s.rows.len()).sum::<usize>())
                .sum()
        };
        assert_eq!(rows(reports[0]), rows(reports[2]));
    }

    #[test]
    fn cache_evicts_fifo_when_full() {
        let mut s = cached_server(1);
        let mut net = RecordingNetwork::default();
        s.on_message(&mut net, Message::Query(query_for(1)));
        // Both docs visited; the 1-slot cache ends holding only the last.
        assert!(s.doc_cache.len() <= 1);
        s.on_message(&mut net, Message::Query(query_for(2)));
        // Root misses (evicted), the other hits or misses depending on
        // order — but the cache never exceeds its bound.
        assert!(s.doc_cache.len() <= 1);
        assert!(s.stats.docs_parsed >= 3);
    }
}

#[cfg(test)]
mod live_tests {
    use super::*;
    use crate::network::RecordingNetwork;
    use webdis_web::{HostedWeb, LiveWeb, Mutation, MutationOp, PageBuilder};

    fn live_web() -> Arc<LiveWeb> {
        let mut web = HostedWeb::new();
        web.insert_page(
            "http://c.test/",
            PageBuilder::new("Root needle").link("/a.html", "a"),
        );
        web.insert_page("http://c.test/a.html", PageBuilder::new("A needle"));
        Arc::new(LiveWeb::from_hosted(&web))
    }

    fn live_server(web: &Arc<LiveWeb>, cfg: EngineConfig) -> ServerEngine {
        ServerEngine::new_live(
            SiteAddr {
                host: "c.test".into(),
                port: 80,
            },
            Arc::clone(web),
            cfg,
        )
    }

    fn query_for(n: u64) -> QueryClone {
        let q = webdis_disql::parse_disql(
            r#"select d.title from document d such that "http://c.test/" L* d
               where d.title contains "needle""#,
        )
        .unwrap();
        QueryClone {
            id: QueryId {
                user: "t".into(),
                host: "u.test".into(),
                port: 9,
                query_num: n,
            },
            dest_nodes: q.start_nodes.clone(),
            rem_pre: q.stages[0].pre.clone(),
            stages: q.stages,
            stage_offset: 0,
            hops: 0,
            ack_host: "u.test".into(),
            ack_port: 9,
        }
    }

    fn rows_of(net: &RecordingNetwork, from: usize) -> Vec<String> {
        net.sent[from..]
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Report(r) => Some(r),
                _ => None,
            })
            .flat_map(|r| &r.reports)
            .flat_map(|nr| &nr.results)
            .flat_map(|sr| &sr.rows)
            .map(|row| format!("{:?}", row.values))
            .collect()
    }

    #[test]
    fn doc_cache_sees_edit_immediately() {
        // The satellite-1 regression: a page edit between two queries
        // must be visible to the second even though the first warmed the
        // footnote-3 cache with the old build.
        let web = live_web();
        let cfg = EngineConfig {
            doc_cache_size: 8,
            ..EngineConfig::default()
        };
        let mut s = live_server(&web, cfg);
        let mut net = RecordingNetwork::default();
        s.on_message(&mut net, Message::Query(query_for(1)));
        let before = rows_of(&net, 0);
        assert!(before.iter().any(|r| r.contains("A needle")), "{before:?}");
        let sent = net.sent.len();
        web.apply(&Mutation {
            at_us: 10,
            op: MutationOp::EditPage {
                url: Url::parse("http://c.test/a.html").unwrap(),
                token: "needle".into(),
            },
        });
        s.on_message(&mut net, Message::Query(query_for(2)));
        let after = rows_of(&net, sent);
        assert!(
            after.iter().any(|r| r.contains("A needle rev1")),
            "stale cached build served after the edit: {after:?}"
        );
        assert_eq!(s.stats.docs_parsed, 3, "only the edited page reparsed");
    }

    #[test]
    fn unvalidated_cache_reproduces_the_staleness_bug() {
        // With the guard off (the historic behaviour) the same sequence
        // serves the superseded build — the bug the chaos oracle's
        // known-bad schedule demonstrates.
        let web = live_web();
        let cfg = EngineConfig {
            doc_cache_size: 8,
            validate_doc_cache: false,
            ..EngineConfig::default()
        };
        let mut s = live_server(&web, cfg);
        let mut net = RecordingNetwork::default();
        s.on_message(&mut net, Message::Query(query_for(1)));
        let sent = net.sent.len();
        web.apply(&Mutation {
            at_us: 10,
            op: MutationOp::EditPage {
                url: Url::parse("http://c.test/a.html").unwrap(),
                token: "needle".into(),
            },
        });
        s.on_message(&mut net, Message::Query(query_for(2)));
        let after = rows_of(&net, sent);
        assert!(
            after.iter().any(|r| r.contains("\"A needle\"")),
            "expected the stale title from the cached build: {after:?}"
        );
        assert!(!after.iter().any(|r| r.contains("rev1")));
    }

    #[test]
    fn deleted_target_reports_dead_link() {
        // A clone arriving at a page deleted mid-query terminates with
        // an explicit dead-link report — never a hang or phantom rows.
        let web = live_web();
        let mut s = live_server(&web, EngineConfig::default());
        let mut net = RecordingNetwork::default();
        web.apply(&Mutation {
            at_us: 10,
            op: MutationOp::DeletePage {
                url: Url::parse("http://c.test/a.html").unwrap(),
            },
        });
        s.on_message(&mut net, Message::Query(query_for(1)));
        let reports: Vec<_> = net
            .sent
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Report(r) => Some(r),
                _ => None,
            })
            .flat_map(|r| &r.reports)
            .collect();
        let dead: Vec<_> = reports
            .iter()
            .filter(|nr| nr.disposition == Disposition::DeadLink)
            .collect();
        assert_eq!(dead.len(), 1, "{reports:?}");
        assert_eq!(dead[0].node, Url::parse("http://c.test/a.html").unwrap());
        assert!(dead[0].results.is_empty() && dead[0].new_entries.is_empty());
        assert_eq!(s.stats.dead_links, 1);
        assert_eq!(s.stats.missing_docs, 0, "deleted is not missing");
    }

    #[test]
    fn site_version_bump_flushes_answer_cache() {
        let web = live_web();
        let cfg = EngineConfig {
            cache: Some(webdis_cache::CachePolicy::default()),
            ..EngineConfig::default()
        };
        let mut s = live_server(&web, cfg);
        let mut net = RecordingNetwork::default();
        s.on_message(&mut net, Message::Query(query_for(1)));
        s.on_message(&mut net, Message::Query(query_for(2)));
        assert!(s.stats.cache_hits > 0, "repeat query served from cache");
        assert_eq!(s.stats.cache_invalidations, 0);
        web.apply(&Mutation {
            at_us: 10,
            op: MutationOp::EditPage {
                url: Url::parse("http://c.test/a.html").unwrap(),
                token: "needle".into(),
            },
        });
        let hits = s.stats.cache_hits;
        s.on_message(&mut net, Message::Query(query_for(3)));
        assert_eq!(s.stats.cache_invalidations, 1, "version bump noticed");
        assert_eq!(s.stats.cache_hits, hits, "post-edit query recomputed");
    }
}

#[cfg(test)]
mod ack_tests {
    use super::*;
    use crate::config::CompletionMode;
    use crate::network::RecordingNetwork;
    use webdis_web::{HostedWeb, PageBuilder};

    fn web() -> Arc<HostedWeb> {
        let mut web = HostedWeb::new();
        web.insert_page(
            "http://m.test/",
            PageBuilder::new("Mid needle").link("http://leaf.test/", "leaf"),
        );
        web.insert_page("http://leaf.test/", PageBuilder::new("Leaf needle"));
        Arc::new(web)
    }

    fn ack_server(host: &str) -> ServerEngine {
        let cfg = EngineConfig {
            completion: CompletionMode::AckChain,
            ..EngineConfig::default()
        };
        ServerEngine::new(
            SiteAddr {
                host: host.into(),
                port: 80,
            },
            web(),
            cfg,
        )
    }

    fn qid() -> QueryId {
        QueryId {
            user: "a".into(),
            host: "user.test".into(),
            port: 9,
            query_num: 1,
        }
    }

    fn clone_from(sender: &SiteAddr, dest: &str) -> QueryClone {
        let q = webdis_disql::parse_disql(&format!(
            r#"select d.url from document d such that "{dest}" G* d
               where d.title contains "needle""#
        ))
        .unwrap();
        QueryClone {
            id: qid(),
            dest_nodes: q.start_nodes.clone(),
            rem_pre: q.stages[0].pre.clone(),
            stages: q.stages,
            stage_offset: 0,
            hops: 0,
            ack_host: sender.host.clone(),
            ack_port: sender.port,
        }
    }

    fn acks_to(net: &RecordingNetwork, to: &SiteAddr) -> usize {
        net.sent
            .iter()
            .filter(|(addr, m)| addr == to && matches!(m, Message::Ack(_)))
            .count()
    }

    #[test]
    fn engaged_server_acks_parent_only_after_child_ack() {
        // m.test forwards to leaf.test; it must not ack its parent until
        // leaf's ack arrives.
        let parent = SiteAddr {
            host: "user.test".into(),
            port: 9,
        };
        let mut s = ack_server("m.test");
        let mut net = RecordingNetwork::default();
        s.on_message(
            &mut net,
            Message::Query(clone_from(&parent, "http://m.test/")),
        );
        // One result report + one clone forward; no ack yet (deficit 1).
        assert_eq!(acks_to(&net, &parent), 0);
        assert!(net
            .sent
            .iter()
            .any(|(addr, m)| matches!(m, Message::Query(_))
                && addr
                    == &query_server_addr(&SiteAddr {
                        host: "leaf.test".into(),
                        port: 80
                    })));
        // The child's ack arrives: now the parent gets acked.
        s.on_message(&mut net, Message::Ack(AckMsg { id: qid() }));
        assert_eq!(acks_to(&net, &parent), 1);
    }

    #[test]
    fn leaf_acks_immediately() {
        let parent = query_server_addr(&SiteAddr {
            host: "m.test".into(),
            port: 80,
        });
        let mut s = ack_server("leaf.test");
        let mut net = RecordingNetwork::default();
        s.on_message(
            &mut net,
            Message::Query(clone_from(&parent, "http://leaf.test/")),
        );
        assert_eq!(
            acks_to(&net, &parent),
            1,
            "no forwards → instant subtree ack"
        );
    }

    #[test]
    fn non_engaging_clone_acked_at_once() {
        let p1 = SiteAddr {
            host: "user.test".into(),
            port: 9,
        };
        let p2 = query_server_addr(&SiteAddr {
            host: "other.test".into(),
            port: 80,
        });
        let mut s = ack_server("m.test");
        let mut net = RecordingNetwork::default();
        s.on_message(&mut net, Message::Query(clone_from(&p1, "http://m.test/")));
        assert_eq!(acks_to(&net, &p1), 0, "engager waits for the subtree");
        // A second clone from a different sender: the log drops it as a
        // duplicate, and the sender is acked immediately.
        s.on_message(&mut net, Message::Query(clone_from(&p2, "http://m.test/")));
        assert_eq!(acks_to(&net, &p2), 1);
        assert_eq!(acks_to(&net, &p1), 0, "still waiting on the child");
    }

    #[test]
    fn purged_query_clones_are_acked() {
        let parent = SiteAddr {
            host: "user.test".into(),
            port: 9,
        };
        let mut s = ack_server("m.test");
        // First the user endpoint is unreachable → purge on report.
        let mut net = RecordingNetwork {
            unreachable: vec![parent.clone()],
            ..RecordingNetwork::default()
        };
        s.on_message(
            &mut net,
            Message::Query(clone_from(&parent, "http://m.test/")),
        );
        assert_eq!(s.stats.terminated_queries, 1);
        // A late clone for the purged query still gets an ack so the
        // upstream tree unwinds.
        let other = query_server_addr(&SiteAddr {
            host: "other.test".into(),
            port: 80,
        });
        let mut net2 = RecordingNetwork::default();
        s.on_message(
            &mut net2,
            Message::Query(clone_from(&other, "http://m.test/")),
        );
        assert_eq!(acks_to(&net2, &other), 1);
        assert!(net2.sent.iter().all(|(_, m)| matches!(m, Message::Ack(_))));
    }

    #[test]
    fn ack_mode_reports_carry_no_cht_entries() {
        let parent = SiteAddr {
            host: "user.test".into(),
            port: 9,
        };
        let mut s = ack_server("m.test");
        let mut net = RecordingNetwork::default();
        s.on_message(
            &mut net,
            Message::Query(clone_from(&parent, "http://m.test/")),
        );
        for (_, m) in &net.sent {
            if let Message::Report(r) = m {
                for nr in &r.reports {
                    assert!(nr.new_entries.is_empty(), "no CHT under ack chains");
                    assert!(!nr.results.is_empty(), "only result-bearing reports travel");
                }
            }
        }
    }
}
