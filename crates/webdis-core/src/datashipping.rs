//! The centralized **data-shipping** baseline (Sections 1 and 6).
//!
//! This is the approach the paper argues against: the user site downloads
//! every candidate document over the network, builds the virtual
//! relations locally, evaluates node-queries locally, and follows the PRE
//! by downloading further documents. Query semantics are identical to
//! the distributed engine — same PRE derivatives, same dead-end rule,
//! same per-state deduplication — only the execution locus differs, so
//! traffic and latency comparisons are apples-to-apples and the two
//! engines must produce the same result set (property-tested).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use webdis_disql::{parse_disql, WebQuery};
use webdis_model::{SiteAddr, Url};
use webdis_net::{FetchRequest, Message};
use webdis_pre::Pre;
use webdis_rel::{eval_node_query, NodeDb, ResultRow};
use webdis_sim::{Actor, Ctx, SimConfig, SimEvent};
use webdis_trace::{TraceEvent, TraceHandle, TraceRecord};

use crate::network::Network;
use crate::simrun::{user_addr, CtxNet, PlainWebServer, QueryOutcome, SimRunError};

/// Counters for the baseline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataShipStats {
    /// Documents requested over the network.
    pub fetches: u64,
    /// Work items served from the local document cache.
    pub cache_hits: u64,
    /// Node-query evaluations performed locally.
    pub evaluations: u64,
    /// Work items that dead-ended (failed predicate or missing document).
    pub dead_ends: u64,
    /// Work items skipped as duplicates of an already-visited state.
    pub duplicates_skipped: u64,
}

/// One unit of traversal work: evaluate/forward at `node` with the given
/// remaining PRE for stage `stage_idx`.
#[derive(Debug, Clone)]
struct WorkItem {
    node: Url,
    stage_idx: usize,
    rem_pre: Pre,
}

/// The centralized user-site engine.
pub struct DataShipUser {
    query: WebQuery,
    self_addr: SiteAddr,
    proc: crate::config::ProcModel,
    /// Downloaded documents (None = known missing).
    cache: HashMap<Url, Option<Rc<NodeDb>>>,
    /// Work waiting on an in-flight download.
    pending: HashMap<Url, Vec<WorkItem>>,
    /// States already processed — the baseline's analogue of the log
    /// table.
    visited: HashSet<(Url, usize, Pre)>,
    outstanding: usize,
    /// Rows per global stage.
    pub results: BTreeMap<u32, Vec<(Url, ResultRow)>>,
    /// True when no downloads are outstanding and all work is drained.
    pub complete: bool,
    /// Time of the first result row.
    pub first_result_us: Option<u64>,
    /// Time the run completed.
    pub completed_at_us: Option<u64>,
    /// Counters.
    pub stats: DataShipStats,
    tracer: TraceHandle,
}

impl DataShipUser {
    /// Creates the baseline engine; call [`DataShipUser::start`].
    pub fn new(query: WebQuery, self_addr: SiteAddr) -> DataShipUser {
        Self::with_proc(query, self_addr, crate::config::ProcModel::default())
    }

    /// Like [`DataShipUser::new`] with an explicit processing-cost model
    /// (the user site pays every parse and evaluation itself).
    pub fn with_proc(
        query: WebQuery,
        self_addr: SiteAddr,
        proc: crate::config::ProcModel,
    ) -> DataShipUser {
        DataShipUser {
            query,
            self_addr,
            proc,
            cache: HashMap::new(),
            pending: HashMap::new(),
            visited: HashSet::new(),
            outstanding: 0,
            results: BTreeMap::new(),
            complete: false,
            first_result_us: None,
            completed_at_us: None,
            stats: DataShipStats::default(),
            tracer: TraceHandle::noop(),
        }
    }

    /// Installs a tracer; the baseline stamps events at the user site
    /// (there is no query shipping, so records carry no hop or query id).
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    fn emit(&self, time_us: u64, event: TraceEvent) {
        self.tracer.emit_with(|| TraceRecord {
            time_us,
            site: self.self_addr.host.clone(),
            query: None,
            hop: None,
            event,
        });
    }

    /// Seeds the traversal with the StartNodes.
    pub fn start(&mut self, net: &mut dyn Network) {
        if self.query.stages.is_empty() {
            self.finish(net.now_us());
            return;
        }
        let first_pre = self.query.stages[0].pre.clone();
        let starts: Vec<Url> = self
            .query
            .start_nodes
            .iter()
            .map(Url::without_fragment)
            .collect();
        let mut queue = VecDeque::new();
        for node in starts {
            self.submit(net, node, 0, first_pre.clone(), &mut queue);
        }
        self.drain(net, queue);
    }

    /// Handles a completed download.
    pub fn on_message(&mut self, net: &mut dyn Network, msg: Message) {
        let Message::FetchReply(reply) = msg else {
            return;
        };
        let url = reply.url.without_fragment();
        if self.cache.contains_key(&url) {
            return; // duplicate reply
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        let db = reply.html.map(|html| {
            net.work(self.proc.parse_cost_us(html.len()));
            Rc::new(NodeDb::build(&url, &webdis_html::parse_html(&html)))
        });
        self.cache.insert(url.clone(), db);
        self.emit(
            net.now_us(),
            TraceEvent::DocFetch {
                url: url.to_string(),
                cache_hit: false,
                // Fetch replies carry no version (the wire format is
                // frozen); downloads stamp the frozen-web default.
                content_version: 0,
            },
        );
        let work = self.pending.remove(&url).unwrap_or_default();
        self.drain(net, work.into());
    }

    /// Queues a work item, requesting the document if necessary.
    fn submit(
        &mut self,
        net: &mut dyn Network,
        node: Url,
        stage_idx: usize,
        rem_pre: Pre,
        ready: &mut VecDeque<WorkItem>,
    ) {
        if !self
            .visited
            .insert((node.clone(), stage_idx, rem_pre.clone()))
        {
            self.stats.duplicates_skipped += 1;
            return;
        }
        let item = WorkItem {
            node: node.clone(),
            stage_idx,
            rem_pre,
        };
        if self.cache.contains_key(&node) {
            self.stats.cache_hits += 1;
            self.emit(
                net.now_us(),
                TraceEvent::DocFetch {
                    url: node.to_string(),
                    cache_hit: true,
                    content_version: 0,
                },
            );
            ready.push_back(item);
            return;
        }
        let first_request = !self.pending.contains_key(&node);
        self.pending.entry(node.clone()).or_default().push(item);
        if first_request {
            self.stats.fetches += 1;
            let req = Message::Fetch(FetchRequest {
                url: node.clone(),
                reply_host: self.self_addr.host.clone(),
                reply_port: self.self_addr.port,
            });
            if net.send(&node.site(), req).is_err() {
                // No web server at the site: every pending item for the
                // document dead-ends.
                self.cache.insert(node.clone(), None);
                let work = self.pending.remove(&node).unwrap_or_default();
                self.stats.dead_ends += work.len() as u64;
            } else {
                self.outstanding += 1;
            }
        }
    }

    /// Processes ready work to quiescence.
    fn drain(&mut self, net: &mut dyn Network, mut queue: VecDeque<WorkItem>) {
        while let Some(item) = queue.pop_front() {
            self.process(net, item, &mut queue);
        }
        if self.outstanding == 0 && !self.complete {
            self.finish(net.now_us());
        }
    }

    /// The same per-node semantics as the distributed server (Figure 4),
    /// executed locally.
    fn process(&mut self, net: &mut dyn Network, item: WorkItem, queue: &mut VecDeque<WorkItem>) {
        let Some(Some(db)) = self.cache.get(&item.node).cloned() else {
            self.stats.dead_ends += 1;
            return;
        };
        let stages = &self.query.stages;
        let mut work = vec![(item.rem_pre, item.stage_idx)];
        let mut submissions: Vec<(Url, usize, Pre)> = Vec::new();
        while let Some((pre, idx)) = work.pop() {
            if pre.nullable() {
                self.stats.evaluations += 1;
                self.emit(
                    net.now_us(),
                    TraceEvent::EvalStart {
                        node: item.node.to_string(),
                        stage: idx as u32,
                    },
                );
                let eval_t0 = net.now_us();
                net.work(self.proc.eval_us);
                match eval_node_query(&db, &stages[idx].query) {
                    Err(_) => continue,
                    Ok(rows) if rows.is_empty() => {
                        // No answer here; traversal continues along the
                        // residual PRE (same rule as the distributed
                        // engine — see `server.rs`).
                        self.emit(
                            net.now_us(),
                            TraceEvent::EvalFinish {
                                node: item.node.to_string(),
                                stage: idx as u32,
                                rows: 0,
                                answered: false,
                                span_us: net.now_us().saturating_sub(eval_t0) + self.proc.eval_us,
                            },
                        );
                        self.stats.dead_ends += 1;
                    }
                    Ok(rows) => {
                        self.emit(
                            net.now_us(),
                            TraceEvent::EvalFinish {
                                node: item.node.to_string(),
                                stage: idx as u32,
                                rows: rows.len() as u32,
                                answered: true,
                                span_us: net.now_us().saturating_sub(eval_t0) + self.proc.eval_us,
                            },
                        );
                        if self.first_result_us.is_none() {
                            self.first_result_us = Some(net.now_us());
                        }
                        let bucket = self.results.entry(idx as u32).or_default();
                        for row in rows {
                            bucket.push((item.node.clone(), row));
                        }
                        if idx + 1 < stages.len() {
                            self.emit(
                                net.now_us(),
                                TraceEvent::StageTransition {
                                    node: item.node.to_string(),
                                    from_stage: idx as u32,
                                    to_stage: idx as u32 + 1,
                                },
                            );
                            work.push((stages[idx + 1].pre.clone(), idx + 1));
                        }
                    }
                }
            }
            for t in pre.first().iter() {
                let d = pre.deriv(t);
                if d.is_never() {
                    continue;
                }
                for link in db.links_of_type(t) {
                    submissions.push((link.href.without_fragment(), idx, d.clone()));
                }
            }
        }
        for (node, idx, pre) in submissions {
            self.submit(net, node, idx, pre, queue);
        }
    }

    fn finish(&mut self, now_us: u64) {
        self.complete = true;
        self.completed_at_us = Some(now_us);
    }

    /// Total rows across stages.
    pub fn total_rows(&self) -> usize {
        self.results.values().map(Vec::len).sum()
    }
}

/// The baseline bound to the simulator.
pub struct SimDataUser {
    /// The wrapped engine.
    pub user: DataShipUser,
}

impl Actor for SimDataUser {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: SimEvent) {
        match event {
            SimEvent::Start => self.user.start(&mut CtxNet(ctx)),
            SimEvent::Net(msg) => self.user.on_message(&mut CtxNet(ctx), msg),
            SimEvent::Timer(_) => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Runs a DISQL query with the centralized data-shipping strategy over
/// the simulated network; plain web servers (answering only document
/// fetches) run at every site.
pub fn run_datashipping_sim(
    web: Arc<webdis_web::HostedWeb>,
    disql: &str,
    sim_cfg: SimConfig,
) -> Result<QueryOutcome, SimRunError> {
    run_datashipping_sim_with(web, disql, sim_cfg, crate::config::ProcModel::default())
}

/// [`run_datashipping_sim`] with an explicit processing-cost model: every
/// parse and evaluation is charged to the user site's single processor.
pub fn run_datashipping_sim_with(
    web: Arc<webdis_web::HostedWeb>,
    disql: &str,
    sim_cfg: SimConfig,
    proc: crate::config::ProcModel,
) -> Result<QueryOutcome, SimRunError> {
    run_datashipping_sim_traced(web, disql, sim_cfg, proc, TraceHandle::noop())
}

/// [`run_datashipping_sim_with`] with a tracer installed on both the
/// engine and the simulated transport.
pub fn run_datashipping_sim_traced(
    web: Arc<webdis_web::HostedWeb>,
    disql: &str,
    sim_cfg: SimConfig,
    proc: crate::config::ProcModel,
    tracer: TraceHandle,
) -> Result<QueryOutcome, SimRunError> {
    let query = parse_disql(disql).map_err(SimRunError::Parse)?;
    let mut net = webdis_sim::SimNet::new(sim_cfg);
    net.set_tracer(tracer.clone());
    for site in web.sites() {
        net.register(site, Box::new(PlainWebServer::new(Arc::clone(&web))));
    }
    let addr = user_addr();
    let mut user = DataShipUser::with_proc(query, addr.clone(), proc);
    user.set_tracer(tracer);
    net.register(addr.clone(), Box::new(SimDataUser { user }));
    net.start(&addr);
    let duration_us = net.run();

    let user = net
        .actor_mut::<SimDataUser>(&addr)
        .expect("baseline user registered");
    Ok(QueryOutcome {
        complete: user.user.complete,
        results: user.user.results.clone(),
        trace: Vec::new(),
        first_result_us: user.user.first_result_us,
        completed_at_us: user.user.completed_at_us,
        cht_stats: crate::cht::ChtStats::default(),
        failed_entries: Vec::new(),
        shed_entries: Vec::new(),
        dead_link_entries: Vec::new(),
        why_incomplete: None,
        metrics: net.metrics.clone(),
        duration_us,
        server_stats: BTreeMap::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use webdis_web::figures;

    #[test]
    fn baseline_answers_campus_query() {
        let outcome = run_datashipping_sim(
            Arc::new(figures::campus()),
            figures::CAMPUS_QUERY,
            SimConfig::default(),
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.rows_of_stage(1).len(), 3);
        // Every byte of every visited document crossed the network.
        assert!(outcome.metrics.bytes_of("fetch-reply") > 0);
    }

    #[test]
    fn baseline_matches_distributed_results() {
        let web = Arc::new(figures::campus());
        let ship = crate::run_query_sim(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let data = run_datashipping_sim(web, figures::CAMPUS_QUERY, SimConfig::default()).unwrap();
        assert_eq!(ship.result_set(), data.result_set());
    }

    #[test]
    fn baseline_ships_more_bytes_than_query_shipping() {
        let web = Arc::new(figures::campus());
        let ship = crate::run_query_sim(
            Arc::clone(&web),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let data = run_datashipping_sim(web, figures::CAMPUS_QUERY, SimConfig::default()).unwrap();
        assert!(
            data.metrics.total.bytes > ship.metrics.total.bytes,
            "data shipping {} bytes vs query shipping {} bytes",
            data.metrics.total.bytes,
            ship.metrics.total.bytes
        );
    }

    #[test]
    fn missing_site_dead_ends_cleanly() {
        let mut web = webdis_web::HostedWeb::new();
        web.insert_page(
            "http://a.test/",
            webdis_web::PageBuilder::new("A").link("http://ghost.test/x", "dangling"),
        );
        let outcome = run_datashipping_sim(
            Arc::new(web),
            r#"select d.url from document d such that "http://a.test/" (L|G)* d"#,
            SimConfig::default(),
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.rows_of_stage(0).len(), 1);
    }
}
