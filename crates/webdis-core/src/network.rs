//! The engine's view of the network — a minimal trait so the same server
//! and user-site code runs on the deterministic simulator and on real TCP.

use webdis_model::SiteAddr;
use webdis_net::Message;

/// The address of the WEBDIS query-server daemon for a site.
///
/// The paper's Query Receiver "listens on a common pre-specified port
/// number at all sites" (Section 4.4) — a *different* service from the
/// site's plain web server. The simulator keys endpoints by
/// [`SiteAddr`], so the daemon's address is derived by prefixing the
/// host: `wdqs.<host>`. A site whose daemon address has no endpoint is a
/// **non-participating** site (Section 7.1): clones to it are refused,
/// while plain document fetches at the site's own address still work.
pub fn query_server_addr(site: &SiteAddr) -> SiteAddr {
    SiteAddr {
        host: format!("wdqs.{}", site.host),
        port: site.port,
    }
}

/// Why a send failed synchronously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkError {
    /// The unreachable destination.
    pub to: SiteAddr,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot reach {}", self.to)
    }
}

impl std::error::Error for NetworkError {}

/// What the engine needs from a transport.
pub trait Network {
    /// Dispatches one message. An `Err` means the destination endpoint
    /// refused the connection — for a result dispatch this is the passive
    /// termination signal of Section 2.8.
    fn send(&mut self, to: &SiteAddr, msg: Message) -> Result<(), NetworkError>;

    /// Monotonic time in microseconds (virtual on the simulator, wall
    /// clock on TCP) — used for log-table purge stamps and latency
    /// accounting.
    fn now_us(&self) -> u64;

    /// Accounts local processing time. On the simulator this occupies the
    /// endpoint's sequential processor (queueing later arrivals and
    /// delaying this handler's outgoing messages); on real transports the
    /// work *is* the time and this is a no-op.
    fn work(&mut self, _us: u64) {}

    /// How long the message currently being handled waited in this
    /// endpoint's inbound queue before processing began — the
    /// backpressure delay the `queue_us` stage span records. Modeled
    /// (virtual, bit-deterministic) on the simulator; wall-clock between
    /// channel enqueue and dequeue on TCP. Transports without queue
    /// visibility report zero.
    fn queue_wait_us(&self) -> u64 {
        0
    }
}

/// A recording fake for unit tests: stores everything, optionally refusing
/// specific destinations.
#[derive(Debug, Default)]
pub struct RecordingNetwork {
    /// Messages accepted, in send order.
    pub sent: Vec<(SiteAddr, Message)>,
    /// Destinations that refuse connections.
    pub unreachable: Vec<SiteAddr>,
    /// Reported time.
    pub time_us: u64,
}

impl Network for RecordingNetwork {
    fn send(&mut self, to: &SiteAddr, msg: Message) -> Result<(), NetworkError> {
        if self.unreachable.contains(to) {
            return Err(NetworkError { to: to.clone() });
        }
        self.sent.push((to.clone(), msg));
        Ok(())
    }

    fn now_us(&self) -> u64 {
        self.time_us
    }
}
