//! One-call harness: run a DISQL query on a hosted web over the
//! deterministic simulator and collect everything the experiments need.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use webdis_disql::{parse_disql, DisqlError, WebQuery};
use webdis_model::{SiteAddr, Url};
use webdis_net::{CloneState, Message, QueryId};
use webdis_rel::ResultRow;
use webdis_sim::{Actor, Ctx, Metrics, SendError, SimConfig, SimEvent, SimNet};

use crate::cht::ChtStats;
use crate::config::EngineConfig;
use crate::network::{query_server_addr, Network, NetworkError};
use crate::server::{ServerEngine, ServerStats};
use crate::user::{TraceEvent, UserSite};

/// The address the user-site client listens on in simulated runs.
pub fn user_addr() -> SiteAddr {
    SiteAddr {
        host: "user.test".into(),
        port: 9900,
    }
}

/// Harness errors.
#[derive(Debug)]
pub enum SimRunError {
    /// The DISQL text did not parse/validate.
    Parse(DisqlError),
}

impl fmt::Display for SimRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimRunError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimRunError {}

/// Everything a finished run exposes.
#[derive(Debug)]
pub struct QueryOutcome {
    /// True when the CHT detected completion (it always should, absent
    /// fault injection).
    pub complete: bool,
    /// Rows per global stage, with producing node.
    pub results: BTreeMap<u32, Vec<(Url, ResultRow)>>,
    /// Node-report trace in arrival order.
    pub trace: Vec<TraceEvent>,
    /// Network traffic metrics.
    pub metrics: Metrics,
    /// Virtual makespan of the whole run, µs.
    pub duration_us: u64,
    /// Virtual time of the first result row at the user site.
    pub first_result_us: Option<u64>,
    /// Virtual time completion was detected.
    pub completed_at_us: Option<u64>,
    /// Per-site server counters.
    pub server_stats: BTreeMap<SiteAddr, ServerStats>,
    /// User-site CHT counters.
    pub cht_stats: ChtStats,
    /// Nodes written off by stale-entry expiry (Section 7.1 graceful
    /// recovery). Empty on fault-free runs.
    pub failed_entries: Vec<(Url, CloneState)>,
    /// Nodes refused by server-side admission control. Empty unless the
    /// config sets an [`AdmissionPolicy`](crate::config::AdmissionPolicy)
    /// and the offered load exceeded it.
    pub shed_entries: Vec<(Url, CloneState)>,
    /// Nodes whose documents were deleted before the clone arrived
    /// (living-web link rot, reported as dead links). Always empty on a
    /// frozen web.
    pub dead_link_entries: Vec<(Url, CloneState)>,
    /// A human-readable diagnosis when the run was not cleanly complete
    /// (still-outstanding state, or which nodes were expired). `None` for
    /// a clean run.
    pub why_incomplete: Option<String>,
}

impl QueryOutcome {
    /// Rows of one stage (empty slice if none).
    pub fn rows_of_stage(&self, stage: u32) -> &[(Url, ResultRow)] {
        self.results.get(&stage).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total rows across stages.
    pub fn total_rows(&self) -> usize {
        self.results.values().map(Vec::len).sum()
    }

    /// A canonical, order-insensitive view of the results — used to check
    /// that different engines/configurations agree.
    pub fn result_set(&self) -> BTreeSet<(u32, String, Vec<String>)> {
        let mut out = BTreeSet::new();
        for (stage, rows) in &self.results {
            for (node, row) in rows {
                out.insert((
                    *stage,
                    node.to_string(),
                    row.values.iter().map(|v| v.render()).collect(),
                ));
            }
        }
        out
    }

    /// Sum of one server counter over all sites.
    pub fn sum_stat(&self, f: impl Fn(&ServerStats) -> u64) -> u64 {
        self.server_stats.values().map(f).sum()
    }
}

/// Adapts the simulator's per-event context to the engine's network trait.
pub(crate) struct CtxNet<'a, 'b>(pub(crate) &'a mut Ctx<'b>);

impl Network for CtxNet<'_, '_> {
    fn send(&mut self, to: &SiteAddr, msg: Message) -> Result<(), NetworkError> {
        self.0
            .send(to, msg)
            .map_err(|SendError::Unreachable(to)| NetworkError { to })
    }

    fn now_us(&self) -> u64 {
        self.0.now_us()
    }

    fn work(&mut self, us: u64) {
        self.0.work(us);
    }

    fn queue_wait_us(&self) -> u64 {
        self.0.queued_us()
    }
}

/// A query server bound to the simulator.
pub struct SimServer {
    /// The wrapped engine (public so harnesses can read stats).
    pub engine: ServerEngine,
}

impl Actor for SimServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: SimEvent) {
        if let SimEvent::Net(msg) = event {
            self.engine.on_message(&mut CtxNet(ctx), msg);
        }
    }

    fn on_restart(&mut self, _now_us: u64) {
        // A crash-restart window closing: the daemon respawns with its
        // volatile state (log table, caches, admission slots) wiped.
        self.engine.restart();
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A plain 1999 web server: answers document fetches, runs no query
/// daemon. Every site gets one; *participating* sites additionally run a
/// [`ServerEngine`] at their [`query_server_addr`].
pub struct PlainWebServer {
    web: webdis_web::WebView,
}

impl PlainWebServer {
    /// A web server for the documents of a frozen `web` snapshot.
    pub fn new(web: std::sync::Arc<webdis_web::HostedWeb>) -> PlainWebServer {
        PlainWebServer {
            web: webdis_web::WebView::Frozen(web),
        }
    }

    /// A web server over a shared living web: fetches answer from the
    /// content version current at request time.
    pub fn new_live(web: std::sync::Arc<webdis_web::LiveWeb>) -> PlainWebServer {
        PlainWebServer {
            web: webdis_web::WebView::Live(web),
        }
    }
}

impl Actor for PlainWebServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: SimEvent) {
        if let SimEvent::Net(Message::Fetch(req)) = event {
            let html = match self.web.fetch(&req.url) {
                webdis_web::FetchOutcome::Found { html, .. } => Some(html),
                _ => None,
            };
            let reply = Message::FetchReply(webdis_net::FetchResponse {
                url: req.url.clone(),
                html,
            });
            let _ = ctx.send(&req.reply_to(), reply);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The user-site client bound to the simulator.
pub struct SimUser {
    /// The wrapped client (public so harnesses can read results).
    pub user: UserSite,
}

/// Timer token for the user actor's periodic expiry sweep.
const EXPIRY_TIMER_TOKEN: u64 = 1;

impl SimUser {
    /// Arms the next expiry sweep, if the config asks for one and the
    /// query is still running.
    fn arm_expiry(&self, ctx: &mut Ctx<'_>) {
        if self.user.complete {
            return;
        }
        if let Some(policy) = self.user.expiry_policy() {
            ctx.schedule_timer(policy.period_us, EXPIRY_TIMER_TOKEN);
        }
    }
}

impl Actor for SimUser {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: SimEvent) {
        match event {
            SimEvent::Start => {
                self.user.start(&mut CtxNet(ctx));
                self.arm_expiry(ctx);
            }
            SimEvent::Net(msg) => self.user.on_message(&mut CtxNet(ctx), msg),
            SimEvent::Timer(EXPIRY_TIMER_TOKEN) => {
                if let Some(policy) = self.user.expiry_policy() {
                    if !self.user.complete {
                        self.user.expire_stale(ctx.now_us(), policy.timeout_us);
                    }
                }
                self.arm_expiry(ctx);
            }
            SimEvent::Timer(_) => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builds a fully-wired simulation: one query server per site of `web`,
/// one user-site client for `query`. Returned net is ready to
/// [`run`](SimNet::run) after [`start`](SimNet::start)ing [`user_addr`].
pub fn build_sim(
    web: Arc<webdis_web::HostedWeb>,
    query: WebQuery,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
) -> SimNet {
    build_sim_participating(web, query, engine_cfg, sim_cfg, None)
}

/// Like [`build_sim`], but only the listed sites run query servers; the
/// rest are plain web servers (Section 7.1's non-participating sites).
/// `None` means every site participates.
pub fn build_sim_participating(
    web: Arc<webdis_web::HostedWeb>,
    query: WebQuery,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
    participating: Option<&[SiteAddr]>,
) -> SimNet {
    let mut net = SimNet::new(sim_cfg);
    net.set_tracer(engine_cfg.tracer.clone());
    register_web_sites(&mut net, &web, &engine_cfg, participating);
    let id = QueryId {
        user: "webdis".into(),
        host: user_addr().host,
        port: user_addr().port,
        query_num: 1,
    };
    let user = UserSite::new(id, query, engine_cfg);
    net.register(user_addr(), Box::new(SimUser { user }));
    net
}

/// Registers the per-site actors of `web` into `net`: a plain web server
/// for every site, plus a query daemon at each participating site's
/// [`query_server_addr`] (`None` = every site participates). Shared by
/// the single-query builders above and the `webdis-load` workload
/// driver, which registers its own user actors on top.
pub fn register_web_sites(
    net: &mut SimNet,
    web: &Arc<webdis_web::HostedWeb>,
    engine_cfg: &EngineConfig,
    participating: Option<&[SiteAddr]>,
) {
    for site in web.sites() {
        // Every site serves documents...
        net.register(site.clone(), Box::new(PlainWebServer::new(Arc::clone(web))));
        // ...participating sites also run the query daemon.
        let participates = participating.map(|p| p.contains(&site)).unwrap_or(true);
        if participates {
            let engine = ServerEngine::new(site.clone(), Arc::clone(web), engine_cfg.clone());
            net.register(query_server_addr(&site), Box::new(SimServer { engine }));
        }
    }
}

/// The living-web variant of [`register_web_sites`]: every declared host
/// of `web` — including sites that currently serve no documents, since a
/// `site_join` mutation may bring them back — gets a plain web server and
/// a query daemon sharing the same evolving store. The harness applies
/// the mutation schedule to `web` between simulation slices; the engines
/// observe version bumps on their next clone arrival.
pub fn register_web_sites_live(
    net: &mut SimNet,
    web: &Arc<webdis_web::LiveWeb>,
    engine_cfg: &EngineConfig,
) {
    for site in web.sites() {
        net.register(
            site.clone(),
            Box::new(PlainWebServer::new_live(Arc::clone(web))),
        );
        let engine = ServerEngine::new_live(site.clone(), Arc::clone(web), engine_cfg.clone());
        net.register(query_server_addr(&site), Box::new(SimServer { engine }));
    }
}

/// Runs a DISQL query over the simulated network and collects the outcome.
pub fn run_query_sim(
    web: Arc<webdis_web::HostedWeb>,
    disql: &str,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
) -> Result<QueryOutcome, SimRunError> {
    let query = parse_disql(disql).map_err(SimRunError::Parse)?;
    let sites = web.sites();
    let mut net = build_sim(web, query, engine_cfg, sim_cfg);
    net.start(&user_addr());
    let duration_us = net.run();

    let mut server_stats = BTreeMap::new();
    for site in sites {
        if let Some(server) = net.actor_mut::<SimServer>(&query_server_addr(&site)) {
            server_stats.insert(site, server.engine.stats);
        }
    }
    let user = net
        .actor_mut::<SimUser>(&user_addr())
        .expect("user actor registered");
    Ok(QueryOutcome {
        complete: user.user.complete,
        results: user.user.results.clone(),
        trace: user.user.trace.clone(),
        first_result_us: user.user.first_result_us,
        completed_at_us: user.user.completed_at_us,
        cht_stats: user.user.cht.stats,
        failed_entries: user.user.failed_entries.clone(),
        shed_entries: user.user.shed_entries.clone(),
        dead_link_entries: user.user.dead_link_entries.clone(),
        why_incomplete: user.user.why_incomplete(),
        metrics: net.metrics.clone(),
        duration_us,
        server_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdis_net::Disposition;
    use webdis_web::{figures, HostedWeb, PageBuilder};

    fn two_site_web() -> Arc<HostedWeb> {
        let mut web = HostedWeb::new();
        web.insert_page(
            "http://a.test/",
            PageBuilder::new("Alpha index about needle")
                .para("welcome")
                .link("/sub.html", "sub")
                .link("http://b.test/", "to b"),
        );
        web.insert_page(
            "http://a.test/sub.html",
            PageBuilder::new("Alpha sub").para("no token"),
        );
        web.insert_page(
            "http://b.test/",
            PageBuilder::new("Beta index about needle").para("beta body"),
        );
        Arc::new(web)
    }

    #[test]
    fn single_stage_local_star_query() {
        // All documents on a.test reachable by local links whose title
        // contains "needle": only the index.
        let outcome = run_query_sim(
            two_site_web(),
            r#"select d.url, d.title
               from document d such that "http://a.test/" L* d
               where d.title contains "needle""#,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        assert!(outcome.complete);
        let rows = outcome.rows_of_stage(0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.values[0].render(), "http://a.test/");
        assert!(outcome.metrics.total.messages >= 2); // clone + report
    }

    #[test]
    fn global_hop_reaches_second_site() {
        let outcome = run_query_sim(
            two_site_web(),
            r#"select d.url
               from document d such that "http://a.test/" G d
               where d.title contains "needle""#,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        assert!(outcome.complete);
        let rows = outcome.rows_of_stage(0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.values[0].render(), "http://b.test/");
        // The start node itself is a PureRouter here (PRE = G, not
        // nullable).
        assert!(outcome
            .trace
            .iter()
            .any(|t| t.disposition == Disposition::PureRouted));
    }

    #[test]
    fn dead_end_on_failed_predicate_still_completes() {
        let outcome = run_query_sim(
            two_site_web(),
            r#"select d.url
               from document d such that "http://a.test/" L* d
               where d.title contains "nosuchtoken""#,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.total_rows(), 0);
        assert!(outcome.sum_stat(|s| s.dead_ends) >= 1);
    }

    #[test]
    fn campus_query_produces_figure8_rows() {
        let outcome = run_query_sim(
            Arc::new(figures::campus()),
            figures::CAMPUS_QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        assert!(outcome.complete);
        // Stage 0: the Labs page.
        let labs = outcome.rows_of_stage(0);
        assert_eq!(labs.len(), 1);
        assert_eq!(
            labs[0].1.values[0].render(),
            "http://www.csa.iisc.ernet.in/Labs"
        );
        // Stage 1: the three conveners of Figure 8.
        let conveners = outcome.rows_of_stage(1);
        assert_eq!(conveners.len(), 3, "rows: {conveners:?}");
        for (expected_url, expected_title, expected_conv) in figures::CAMPUS_EXPECTED {
            let row = conveners
                .iter()
                .find(|(_, r)| r.values[0].render() == expected_url)
                .unwrap_or_else(|| panic!("missing row for {expected_url}"));
            assert_eq!(row.1.values[1].render(), expected_title);
            assert!(row.1.values[2].render().contains(expected_conv));
        }
    }

    #[test]
    fn unknown_start_site_completes_empty() {
        let outcome = run_query_sim(
            two_site_web(),
            r#"select d.url from document d such that "http://ghost.test/" L* d"#,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.total_rows(), 0);
    }

    #[test]
    fn parse_error_is_reported() {
        let err = run_query_sim(
            two_site_web(),
            "select nonsense",
            EngineConfig::default(),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimRunError::Parse(_)));
    }
}
