//! The simulated workload driver: every user, every server, one
//! deterministic event loop.
//!
//! Each user site becomes a [`ScheduledClient`] actor whose submissions
//! fire from virtual timers, so M concurrent users interleave with the
//! per-site [`SimServer`](webdis_core::simrun::SimServer) daemons in one
//! totally-ordered event sequence — the same run twice is *identical*,
//! message for message. The harness advances the clock in purge-period
//! ticks so it can drive the Section-3.1.1 `purge_log` sweep on every
//! server between event bursts (servers themselves stay timer-free), and
//! records each server's log-table high-water mark as the
//! `log_len_high_water` registry gauge.

use std::collections::BTreeMap;
use std::sync::Arc;

use webdis_core::simrun::SimServer;
use webdis_core::{
    query_server_addr, register_web_sites, register_web_sites_live, ClientProcess, EngineConfig,
    ScheduledClient, ScheduledSubmission, SimRunError,
};
use webdis_sim::{SimConfig, SimNet};
use webdis_trace::{TraceEvent as TrEvent, TraceRecord};
use webdis_web::{LiveWeb, MutationSchedule, WebView};

use crate::spec::{load_user_addr, WorkloadSpec};
use crate::{QueryRecord, WorkloadOutcome};

/// Tick used to drive purge sweeps when the config does not set
/// `log_purge_us` (the gauge still wants periodic samples).
const DEFAULT_TICK_US: u64 = 100_000;

/// Applies one scheduled mutation to a live view (no-op on frozen) and
/// stamps it into the trace at its *scheduled* virtual time, keeping
/// traces byte-comparable across runs of the same seed.
fn apply_mutation(web: &WebView, m: &webdis_web::Mutation, tracer: &webdis_trace::TraceHandle) {
    if let WebView::Live(live) = web {
        let applied = live.apply(m);
        tracer.emit_with(|| TraceRecord {
            time_us: m.at_us,
            site: applied.host.clone(),
            query: None,
            hop: None,
            event: TrEvent::WebMutation {
                op: applied.label.to_string(),
                url: m.op.url_string(),
                site_version: applied.site_version,
            },
        });
    }
}

/// Runs the whole workload over the deterministic simulator.
pub fn run_workload_sim(
    web: Arc<webdis_web::HostedWeb>,
    spec: &WorkloadSpec,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
) -> Result<WorkloadOutcome, SimRunError> {
    run_workload_sim_observed(web, spec, engine_cfg, sim_cfg, &mut |_, _| {})
}

/// [`run_workload_sim`] with a mid-flight metrics observer: after every
/// purge tick the registry snapshot is handed to `observer` together
/// with the virtual clock — the simulator's analogue of scraping a live
/// daemon's `/metrics`. The observer only fires when the configured
/// tracer actually carries a registry (a noop tracer has nothing to
/// snapshot), and never perturbs the simulation: same seed, same
/// schedule — identical run, observed or not.
pub fn run_workload_sim_observed(
    web: Arc<webdis_web::HostedWeb>,
    spec: &WorkloadSpec,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
    observer: &mut dyn FnMut(u64, &webdis_trace::RegistrySnapshot),
) -> Result<WorkloadOutcome, SimRunError> {
    run_workload_view(
        WebView::Frozen(web),
        None,
        spec,
        engine_cfg,
        sim_cfg,
        observer,
    )
}

/// Runs the workload against a shared **living** web while `schedule`'s
/// mutations land at their exact virtual times, interleaved with the
/// in-flight queries. Each applied mutation is stamped into the trace as
/// a [`TrEvent::WebMutation`]; any events past the point where the
/// simulation drains are still applied (at their scheduled times) so the
/// web's history digest always reflects the complete schedule.
pub fn run_workload_sim_live(
    web: Arc<LiveWeb>,
    schedule: &MutationSchedule,
    spec: &WorkloadSpec,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
) -> Result<WorkloadOutcome, SimRunError> {
    run_workload_sim_live_observed(web, schedule, spec, engine_cfg, sim_cfg, &mut |_, _| {})
}

/// [`run_workload_sim_live`] with the same mid-flight metrics observer
/// as [`run_workload_sim_observed`].
pub fn run_workload_sim_live_observed(
    web: Arc<LiveWeb>,
    schedule: &MutationSchedule,
    spec: &WorkloadSpec,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
    observer: &mut dyn FnMut(u64, &webdis_trace::RegistrySnapshot),
) -> Result<WorkloadOutcome, SimRunError> {
    run_workload_view(
        WebView::Live(web),
        Some(schedule),
        spec,
        engine_cfg,
        sim_cfg,
        observer,
    )
}

fn run_workload_view(
    web: WebView,
    schedule: Option<&MutationSchedule>,
    spec: &WorkloadSpec,
    engine_cfg: EngineConfig,
    sim_cfg: SimConfig,
    observer: &mut dyn FnMut(u64, &webdis_trace::RegistrySnapshot),
) -> Result<WorkloadOutcome, SimRunError> {
    let plans = spec.plan()?;
    let tracer = engine_cfg.tracer.clone();
    let monitor = engine_cfg.monitor.clone();
    let sites = web.sites();
    let events = schedule.map(|s| s.events.as_slice()).unwrap_or(&[]);
    let mut mut_idx = 0usize;

    let mut net = SimNet::new(sim_cfg);
    net.set_tracer(tracer.clone());
    match &web {
        WebView::Frozen(w) => register_web_sites(&mut net, w, &engine_cfg, None),
        WebView::Live(l) => register_web_sites_live(&mut net, l, &engine_cfg),
    }
    for plan in &plans {
        let addr = load_user_addr(plan.user);
        let client = ClientProcess::new(
            &format!("load{}", plan.user),
            addr.clone(),
            engine_cfg.clone(),
        );
        let schedule: Vec<ScheduledSubmission> = plan
            .submissions
            .iter()
            .map(|s| ScheduledSubmission {
                at_us: s.at_us,
                query: s.query.clone(),
            })
            .collect();
        net.register(
            addr.clone(),
            Box::new(ScheduledClient::new(client, schedule)),
        );
        net.start(&addr);
    }

    // Advance in ticks; between bursts run the periodic purge sweep on
    // every server (which also retires idle admission slots) and sample
    // the log-table gauge. On a living web the loop also stops at every
    // scheduled mutation time, so each event lands at its exact virtual
    // instant — *between* message deliveries, never mid-handler — and
    // the run stays deterministic.
    let purge_period = engine_cfg.log_purge_us;
    let tick = purge_period.unwrap_or(DEFAULT_TICK_US).max(1);
    let mut next_tick = tick;
    loop {
        let tick_target = next_tick.min(spec.horizon_us);
        let target = match events.get(mut_idx) {
            Some(m) if m.at_us < tick_target => m.at_us,
            _ => tick_target,
        };
        let more = net.run_until(target);
        while let Some(m) = events.get(mut_idx) {
            if m.at_us > target {
                break;
            }
            apply_mutation(&web, m, &tracer);
            mut_idx += 1;
        }
        if target < tick_target {
            // Mutation-only stop: resume toward the tick without the
            // purge/observer bookkeeping (that stays on tick cadence).
            if more || mut_idx < events.len() {
                continue;
            }
        }
        let now = net.now_us();
        for site in &sites {
            if let Some(server) = net.actor_mut::<SimServer>(&query_server_addr(site)) {
                if let Some(period) = purge_period {
                    server.engine.purge_log(now.saturating_sub(period));
                }
                tracer.gauge_max("log_len_high_water", server.engine.log_len() as u64);
            }
        }
        if let Some(snapshot) = tracer.registry_snapshot() {
            // The monitor samples on the same tick as the observer, so
            // its window closes land at deterministic virtual times.
            if let Some(monitor) = &monitor {
                monitor.ingest(now, &snapshot);
            }
            observer(now, &snapshot);
        }
        if (!more && mut_idx >= events.len()) || next_tick >= spec.horizon_us {
            break;
        }
        if target == next_tick {
            next_tick += tick;
        }
    }
    // The simulation drained before late-scheduled events: apply the
    // rest anyway (they cannot affect finished queries) so the history
    // digest covers the whole schedule no matter how fast the run was.
    for m in &events[mut_idx..] {
        apply_mutation(&web, m, &tracer);
    }
    let duration_us = net.now_us();

    // Collect per-query records and per-site counters.
    let mut records = Vec::new();
    let mut unsubmitted = 0;
    for plan in &plans {
        let addr = load_user_addr(plan.user);
        let sc = net
            .actor_mut::<ScheduledClient>(&addr)
            .expect("user actor registered");
        unsubmitted += plan.submissions.len() - sc.client.query_nums().len();
        for num in sc.client.query_nums() {
            let site = sc.client.query(num).expect("listed query exists");
            let submitted_us = sc.submitted_at.get(&num).copied().unwrap_or(0);
            let record = QueryRecord {
                user: plan.user,
                query_num: num,
                submitted_us,
                complete: site.complete,
                completed_us: site.completed_at_us,
                results: site.results.clone(),
                shed_nodes: site.shed_entries.len(),
                failed_nodes: site.failed_entries.len(),
                dead_link_nodes: site.dead_link_entries.len(),
                cht_converged: site.cht.complete(),
                cht_live: site.cht.live_entries().count(),
                cht_stats: site.cht.stats,
                why_incomplete: site.why_incomplete(),
            };
            if let Some(latency) = record.latency_us() {
                tracer.observe("query_latency_us", latency);
            }
            records.push(record);
        }
    }
    let mut server_stats = BTreeMap::new();
    for site in sites {
        if let Some(server) = net.actor_mut::<SimServer>(&query_server_addr(&site)) {
            server_stats.insert(site, server.engine.stats);
        }
    }
    // Close the monitor's final partial window after the end-of-run
    // `query_latency_us` observations above, so the last window's
    // quantiles cover every completed query.
    if let Some(monitor) = &monitor {
        if let Some(snapshot) = tracer.registry_snapshot() {
            monitor.finalize(duration_us, &snapshot);
        }
    }

    Ok(WorkloadOutcome {
        records,
        unsubmitted,
        duration_us,
        server_stats,
    })
}
