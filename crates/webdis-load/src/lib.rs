#![warn(missing_docs)]

//! Concurrent multi-query workload engine — the load harness behind the
//! throughput experiment (T13).
//!
//! The paper's experiments submit one query at a time; the prototype it
//! describes is a *service*: many users, each firing queries at their own
//! pace, all flowing through the same per-site query-server daemons. This
//! crate supplies that missing workload layer:
//!
//! * [`spec`] — a seeded workload specification: M user sites, N
//!   submissions each, open-loop [`ArrivalProcess`] (uniform or Poisson
//!   interarrivals), a weighted [`QueryMix`] of DISQL templates. Same
//!   seed, same plan — throughput runs are reproducible down to identical
//!   latency histograms;
//! * [`simdrive`] — runs a whole workload inside one deterministic
//!   [`webdis_sim::SimNet`] event loop: one
//!   [`ScheduledClient`](webdis_core::ScheduledClient) actor per user
//!   plus the shared per-site server actors, with periodic
//!   Section-3.1.1 `purge_log` sweeps driven from the harness;
//! * [`tcpdrive`] — the same workload over real loopback sockets on a
//!   [`webdis_core::TcpCluster`], many client processes multiplexed on
//!   one result endpoint (the ids disambiguate, as the paper's QueryID
//!   design intends).
//!
//! Both drivers observe per-query latency into the trace registry
//! (`query_latency_us`) and surface server-side **admission control**:
//! when an [`AdmissionPolicy`](webdis_core::AdmissionPolicy) caps
//! per-site in-flight queries, refused queries terminate promptly with
//! [`TermReason::Shed`](webdis_trace::TermReason) — never a silent hang —
//! and are counted here.

pub mod simdrive;
pub mod spec;
pub mod tcpdrive;

pub use simdrive::{
    run_workload_sim, run_workload_sim_live, run_workload_sim_live_observed,
    run_workload_sim_observed,
};
pub use spec::{
    fork_seed, load_user_addr, ArrivalProcess, PlannedQuery, QueryMix, UserPlan, WorkloadSpec,
};
pub use tcpdrive::{run_workload_tcp, run_workload_tcp_live};

use std::collections::BTreeMap;

use webdis_model::{SiteAddr, Url};
use webdis_rel::ResultRow;

use webdis_core::ServerStats;

/// One query's fate in a workload run.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Submitting user (index into the spec).
    pub user: usize,
    /// Query number within that user's client process.
    pub query_num: u64,
    /// Submission time, µs (virtual in sim runs, wall-clock in TCP runs).
    pub submitted_us: u64,
    /// True when completion was detected.
    pub complete: bool,
    /// Completion time, µs on the same clock as `submitted_us`.
    pub completed_us: Option<u64>,
    /// Rows per global stage, with producing node.
    pub results: BTreeMap<u32, Vec<(Url, ResultRow)>>,
    /// Nodes refused by admission control (load shedding).
    pub shed_nodes: usize,
    /// Nodes written off by stale-entry expiry.
    pub failed_nodes: usize,
    /// Clones that arrived at pages deleted mid-run (living web only):
    /// each terminated gracefully with a dead-link report. Benign — the
    /// web changed, the engine did not lose rows.
    pub dead_link_nodes: usize,
    /// True when the home-site CHT converged: every entry marked deleted
    /// and no tombstone outstanding (the paper's completion condition).
    pub cht_converged: bool,
    /// Live (non-deleted) CHT entries left at the end of the run.
    pub cht_live: usize,
    /// Home-site CHT operation counters at the end of the run.
    pub cht_stats: webdis_core::ChtStats,
    /// Diagnosis when the run was not cleanly complete.
    pub why_incomplete: Option<String>,
}

impl QueryRecord {
    /// Submission-to-completion latency, µs; `None` while incomplete.
    pub fn latency_us(&self) -> Option<u64> {
        self.completed_us
            .map(|done| done.saturating_sub(self.submitted_us))
    }

    /// True when at least one node was refused by admission control.
    pub fn was_shed(&self) -> bool {
        self.shed_nodes > 0
    }

    /// A canonical, order-insensitive view of the results, comparable
    /// across transports and against serial baseline runs.
    pub fn result_set(&self) -> std::collections::BTreeSet<(u32, String, Vec<String>)> {
        let mut out = std::collections::BTreeSet::new();
        for (stage, rows) in &self.results {
            for (node, row) in rows {
                out.insert((
                    *stage,
                    node.to_string(),
                    row.values.iter().map(|v| v.render()).collect(),
                ));
            }
        }
        out
    }
}

/// Everything a finished workload run exposes.
#[derive(Debug)]
pub struct WorkloadOutcome {
    /// Per-query records, ordered by (user, query number).
    pub records: Vec<QueryRecord>,
    /// Planned submissions that never went out (horizon/deadline hit
    /// first); zero on healthy runs.
    pub unsubmitted: usize,
    /// Total run duration, µs (virtual or wall-clock).
    pub duration_us: u64,
    /// Per-site server counters at the end of the run.
    pub server_stats: BTreeMap<SiteAddr, ServerStats>,
}

impl WorkloadOutcome {
    /// Queries that completed cleanly (no shed, no expired nodes).
    pub fn completed_clean(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.complete && !r.was_shed() && r.failed_nodes == 0)
            .count()
    }

    /// Queries that completed under load shedding.
    pub fn completed_shed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.complete && r.was_shed())
            .count()
    }

    /// Queries still incomplete at the end — the invariant the admission
    /// controller exists to protect says this must be **zero**.
    pub fn hung(&self) -> usize {
        self.records.iter().filter(|r| !r.complete).count() + self.unsubmitted
    }

    /// Completed queries per virtual/wall second.
    pub fn throughput_qps(&self) -> f64 {
        let completed = self.records.iter().filter(|r| r.complete).count();
        if self.duration_us == 0 {
            return 0.0;
        }
        completed as f64 * 1_000_000.0 / self.duration_us as f64
    }

    /// Sum of one server counter over all sites.
    pub fn sum_stat(&self, f: impl Fn(&ServerStats) -> u64) -> u64 {
        self.server_stats.values().map(f).sum()
    }
}
