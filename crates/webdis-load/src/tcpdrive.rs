//! The TCP workload driver: the same workload over real loopback
//! sockets.
//!
//! Servers run as the per-site daemon threads of a
//! [`TcpCluster`] (whose poll loops already handle the periodic
//! `purge_log` sweep and the `log_len_high_water` gauge). All M client
//! processes share the cluster's one result endpoint — the paper's
//! QueryID design (`user, IP, port, query number`) exists precisely so a
//! single listening socket can serve many concurrent queries; here it
//! additionally disambiguates many *users*, routed by the user name
//! embedded in every report's id.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use webdis_core::{
    ClientProcess, CompletionMode, EngineConfig, SimRunError, TcpCluster, TcpFaultPlan,
};
use webdis_disql::WebQuery;
use webdis_net::Message;

use crate::spec::WorkloadSpec;
use crate::{QueryRecord, WorkloadOutcome};

/// Runs the whole workload over a loopback [`TcpCluster`]. `deadline`
/// bounds the wall-clock run; planned submissions are replayed open-loop
/// at their spec'd offsets from cluster start.
pub fn run_workload_tcp(
    web: Arc<webdis_web::HostedWeb>,
    spec: &WorkloadSpec,
    engine_cfg: EngineConfig,
    deadline: Duration,
) -> Result<WorkloadOutcome, SimRunError> {
    let cluster = TcpCluster::start(web, &engine_cfg, TcpFaultPlan::default());
    run_workload_cluster(cluster, spec, engine_cfg, deadline)
}

/// [`run_workload_tcp`] against a shared **living** web: the cluster's
/// mutator thread applies `schedule` at its wall-clock offsets while the
/// workload's queries are in flight — real mixed read/mutate traffic,
/// the soak experiment's TCP leg.
pub fn run_workload_tcp_live(
    web: Arc<webdis_web::LiveWeb>,
    schedule: Option<webdis_web::MutationSchedule>,
    spec: &WorkloadSpec,
    engine_cfg: EngineConfig,
    deadline: Duration,
) -> Result<WorkloadOutcome, SimRunError> {
    let cluster = TcpCluster::start_live(web, &engine_cfg, TcpFaultPlan::default(), schedule);
    run_workload_cluster(cluster, spec, engine_cfg, deadline)
}

fn run_workload_cluster(
    cluster: TcpCluster,
    spec: &WorkloadSpec,
    engine_cfg: EngineConfig,
    deadline: Duration,
) -> Result<WorkloadOutcome, SimRunError> {
    let plans = spec.plan()?;
    let tracer = engine_cfg.tracer.clone();
    let expiry = match engine_cfg.completion {
        CompletionMode::Cht => engine_cfg.expiry,
        CompletionMode::AckChain => None,
    };
    let mut net = cluster.user_net();

    // One client process per user, all listening on the cluster's single
    // user endpoint; reports are routed back by the user name in the id.
    let mut clients: Vec<ClientProcess> = (0..spec.users)
        .map(|u| {
            ClientProcess::new(
                &format!("load{u}"),
                cluster.user_site().clone(),
                engine_cfg.clone(),
            )
        })
        .collect();
    let by_user: BTreeMap<String, usize> =
        (0..spec.users).map(|u| (format!("load{u}"), u)).collect();

    // Merge every user's schedule into one time-ordered submission queue.
    let mut pending: Vec<(u64, usize, WebQuery)> = plans
        .iter()
        .flat_map(|p| {
            p.submissions
                .iter()
                .map(move |s| (s.at_us, p.user, s.query.clone()))
        })
        .collect();
    pending.sort_by_key(|(at, user, _)| (*at, *user));
    let mut pending: VecDeque<(u64, usize, WebQuery)> = pending.into();

    let start = Instant::now();
    let mut submitted_at: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    let mut last_sweep = Instant::now();
    loop {
        let now = cluster.now_us();
        while pending.front().is_some_and(|(at, _, _)| *at <= now) {
            let (_, user, query) = pending.pop_front().expect("front checked");
            let num = clients[user].submit(&mut net, query);
            submitted_at.insert((user, num), cluster.now_us());
        }
        if pending.is_empty() && clients.iter().all(ClientProcess::all_complete) {
            break;
        }
        if start.elapsed() >= deadline {
            break;
        }
        if let Some(msg) = cluster.recv_timeout(Duration::from_millis(5)) {
            let id = match &msg {
                Message::Report(r) => Some(&r.id),
                Message::Ack(a) => Some(&a.id),
                _ => None,
            };
            if let Some(&user) = id.and_then(|id| by_user.get(id.user.as_str())) {
                clients[user].on_message(&mut net, msg);
            }
        }
        if let Some(policy) = expiry {
            if last_sweep.elapsed() >= Duration::from_micros(policy.period_us) {
                last_sweep = Instant::now();
                let now = cluster.now_us();
                for client in &mut clients {
                    client.expire_stale_all(now, policy.timeout_us);
                }
            }
        }
    }
    let duration_us = cluster.now_us();
    let engines = cluster.shutdown();

    let mut records = Vec::new();
    let unsubmitted = pending.len();
    for (user, client) in clients.iter().enumerate() {
        for num in client.query_nums() {
            let site = client.query(num).expect("listed query exists");
            let record = QueryRecord {
                user,
                query_num: num,
                submitted_us: submitted_at.get(&(user, num)).copied().unwrap_or(0),
                complete: site.complete,
                completed_us: site.completed_at_us,
                results: site.results.clone(),
                shed_nodes: site.shed_entries.len(),
                failed_nodes: site.failed_entries.len(),
                dead_link_nodes: site.dead_link_entries.len(),
                cht_converged: site.cht.complete(),
                cht_live: site.cht.live_entries().count(),
                cht_stats: site.cht.stats,
                why_incomplete: site.why_incomplete(),
            };
            if let Some(latency) = record.latency_us() {
                tracer.observe("query_latency_us", latency);
            }
            records.push(record);
        }
    }
    let server_stats = engines
        .iter()
        .map(|e| (e.site().clone(), e.stats))
        .collect();

    Ok(WorkloadOutcome {
        records,
        unsubmitted,
        duration_us,
        server_stats,
    })
}
