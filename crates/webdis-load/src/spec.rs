//! Workload specification: who submits what, when.
//!
//! A [`WorkloadSpec`] is a *seeded plan generator*: expanding it yields,
//! deterministically, one submission schedule per simulated user site —
//! an open-loop arrival process (submissions happen at their planned
//! times whether or not earlier queries have finished) over a mix of
//! DISQL templates. The same spec with the same seed always produces the
//! same plan, which is what makes the throughput experiment (T13)
//! repeatable down to identical latency histograms.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use webdis_disql::{parse_disql, WebQuery};
use webdis_model::SiteAddr;

use webdis_core::SimRunError;

/// How interarrival gaps between one user's submissions are drawn.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Fixed gaps: every `interarrival_us` µs exactly.
    Uniform {
        /// Gap between consecutive submissions, µs.
        interarrival_us: u64,
    },
    /// Poisson process: exponentially-distributed gaps with the given
    /// mean, sampled by inverse CDF (`-ln(u)·mean`, `u` uniform in
    /// (0, 1]).
    Poisson {
        /// Mean gap between consecutive submissions, µs.
        mean_interarrival_us: u64,
    },
    /// An overload burst followed by a quiet tail: each user's first
    /// `burst` submissions arrive in a tight Poisson clump (mean
    /// `burst_mean_us`), the rest at the relaxed `tail_mean_us` pace.
    /// This is the alerting workload (T18): the burst drives admission
    /// control into mass shedding, the tail keeps the system ticking —
    /// shed-free — long enough for the alert to resolve.
    BurstThenTail {
        /// Submissions per user that belong to the burst.
        burst: usize,
        /// Mean interarrival gap inside the burst, µs.
        burst_mean_us: u64,
        /// Mean interarrival gap after the burst, µs.
        tail_mean_us: u64,
    },
}

impl ArrivalProcess {
    /// Draws the gap before a user's submission number `index`
    /// (0-based), µs. Only [`ArrivalProcess::BurstThenTail`] looks at
    /// the index; the stationary processes ignore it.
    fn sample_us(&self, index: usize, rng: &mut StdRng) -> u64 {
        // 53 uniform bits mapped onto (0, 1]: u can reach 1.0 (gap 0
        // excluded is fine) but never 0 (ln would blow up).
        let exp = |mean: u64, rng: &mut StdRng| -> u64 {
            let u = rng.gen_range(1u64..=(1u64 << 53)) as f64 / (1u64 << 53) as f64;
            (-u.ln() * mean as f64).round() as u64
        };
        match *self {
            ArrivalProcess::Uniform { interarrival_us } => interarrival_us,
            ArrivalProcess::Poisson {
                mean_interarrival_us,
            } => exp(mean_interarrival_us, rng),
            ArrivalProcess::BurstThenTail {
                burst,
                burst_mean_us,
                tail_mean_us,
            } => {
                if index < burst {
                    exp(burst_mean_us, rng)
                } else {
                    exp(tail_mean_us, rng)
                }
            }
        }
    }

    /// The mean interarrival gap, µs — the offered-load knob. For the
    /// burst shape this is the *burst* mean (the load the admission
    /// controller actually faces).
    pub fn mean_us(&self) -> u64 {
        match *self {
            ArrivalProcess::Uniform { interarrival_us } => interarrival_us,
            ArrivalProcess::Poisson {
                mean_interarrival_us,
            } => mean_interarrival_us,
            ArrivalProcess::BurstThenTail { burst_mean_us, .. } => burst_mean_us,
        }
    }
}

/// A weighted mix of DISQL templates over the hosted web.
#[derive(Debug, Clone, Default)]
pub struct QueryMix {
    /// `(disql, weight)` pairs; draws are proportional to weight.
    pub templates: Vec<(String, u32)>,
}

impl QueryMix {
    /// A mix with a single template.
    pub fn single(disql: &str) -> QueryMix {
        QueryMix {
            templates: vec![(disql.to_owned(), 1)],
        }
    }

    /// Adds a weighted template (builder style).
    pub fn with(mut self, disql: &str, weight: u32) -> QueryMix {
        self.templates.push((disql.to_owned(), weight));
        self
    }

    /// A Zipf(s) mix over ranked templates: rank `k` (1-based, in the
    /// order given) gets ticket weight `round(1e6 / k^s)`, so draws
    /// follow the classic head-heavy popularity curve million-user
    /// traffic exhibits. `s_milli` is the exponent in thousandths
    /// (1000 ⇒ Zipf(1.0), 0 ⇒ uniform). Integer exponents are computed
    /// in exact integer arithmetic so the ticket table — and therefore
    /// every seeded plan built from it — is identical on every platform.
    pub fn zipf(s_milli: u64, templates: &[&str]) -> QueryMix {
        const SCALE: u64 = 1_000_000;
        let weight = |rank: u64| -> u32 {
            let w = if s_milli.is_multiple_of(1000) {
                // k^s exact for whole s; rounded division.
                let denom = rank.pow((s_milli / 1000) as u32);
                (SCALE + denom / 2) / denom
            } else {
                let s = s_milli as f64 / 1000.0;
                (SCALE as f64 / (rank as f64).powf(s)).round() as u64
            };
            w.max(1) as u32
        };
        QueryMix {
            templates: templates
                .iter()
                .enumerate()
                .map(|(i, t)| ((*t).to_owned(), weight(i as u64 + 1)))
                .collect(),
        }
    }

    /// Draws one template index proportional to weight.
    fn draw(&self, rng: &mut StdRng) -> usize {
        let total: u64 = self.templates.iter().map(|(_, w)| *w as u64).sum();
        assert!(total > 0, "query mix needs at least one weighted template");
        let mut ticket = rng.gen_range(0..total);
        for (i, (_, w)) in self.templates.iter().enumerate() {
            if ticket < *w as u64 {
                return i;
            }
            ticket -= *w as u64;
        }
        unreachable!("ticket drawn below total weight")
    }
}

/// The full workload: M user sites, N submissions each, arrivals, mix.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of concurrent user sites (each its own client process).
    pub users: usize,
    /// Submissions per user.
    pub queries_per_user: usize,
    /// Interarrival process, per user.
    pub arrival: ArrivalProcess,
    /// Template mix submissions draw from.
    pub mix: QueryMix,
    /// Master seed; per-user streams are split off it.
    pub seed: u64,
    /// Virtual-time cap for the simulated driver, µs. Queries still
    /// running at the horizon count as hung (should never happen —
    /// shedding and expiry both conclude queries).
    pub horizon_us: u64,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            users: 2,
            queries_per_user: 4,
            arrival: ArrivalProcess::Uniform {
                interarrival_us: 200_000,
            },
            mix: QueryMix::default(),
            seed: 1,
            horizon_us: 600_000_000, // ten virtual minutes
        }
    }
}

/// The address user `i`'s client listens on. Distinct hosts per user keep
/// `QueryId`s globally unique (the id embeds host and port) and, in the
/// simulator, give each client its own actor endpoint.
pub fn load_user_addr(user: usize) -> SiteAddr {
    SiteAddr {
        host: format!("user{user}.load.test"),
        port: 9900,
    }
}

/// One planned submission.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Planned submission time, µs since workload start.
    pub at_us: u64,
    /// Index into the spec's template mix (for per-template breakdowns).
    pub template: usize,
    /// The parsed query.
    pub query: WebQuery,
}

/// One user's expanded schedule.
#[derive(Debug, Clone)]
pub struct UserPlan {
    /// User index (0-based); address is [`load_user_addr`].
    pub user: usize,
    /// Submissions, earliest first.
    pub submissions: Vec<PlannedQuery>,
}

impl WorkloadSpec {
    /// Expands the spec into per-user schedules. Parses every template
    /// once up front so bad DISQL surfaces before anything runs.
    pub fn plan(&self) -> Result<Vec<UserPlan>, SimRunError> {
        let parsed: Vec<WebQuery> = self
            .mix
            .templates
            .iter()
            .map(|(disql, _)| parse_disql(disql).map_err(SimRunError::Parse))
            .collect::<Result<_, _>>()?;
        let mut plans = Vec::with_capacity(self.users);
        for user in 0..self.users {
            // Split a per-user stream off the master seed so adding a
            // user never perturbs the others' schedules.
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (user as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let mut at_us = 0;
            let mut submissions = Vec::with_capacity(self.queries_per_user);
            for index in 0..self.queries_per_user {
                at_us += self.arrival.sample_us(index, &mut rng);
                let template = self.mix.draw(&mut rng);
                submissions.push(PlannedQuery {
                    at_us,
                    template,
                    query: parsed[template].clone(),
                });
            }
            plans.push(UserPlan { user, submissions });
        }
        Ok(plans)
    }

    /// Total planned submissions.
    pub fn total_queries(&self) -> usize {
        self.users * self.queries_per_user
    }

    /// Offered load in queries per (virtual) second across all users.
    pub fn offered_qps(&self) -> f64 {
        let mean = self.arrival.mean_us().max(1) as f64;
        self.users as f64 * 1_000_000.0 / mean
    }
}

/// Drains `rng` once; exists so callers can fork deterministic
/// sub-streams the same way `plan` does.
pub fn fork_seed(master: u64, lane: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(master ^ (lane + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: &str = r#"select d.url from document d such that "http://site0.test/doc0.html" L* d"#;

    #[test]
    fn plan_is_seed_deterministic() {
        let spec = WorkloadSpec {
            users: 3,
            queries_per_user: 5,
            arrival: ArrivalProcess::Poisson {
                mean_interarrival_us: 50_000,
            },
            mix: QueryMix::single(Q).with(Q, 3),
            seed: 42,
            ..WorkloadSpec::default()
        };
        let a = spec.plan().unwrap();
        let b = spec.plan().unwrap();
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.user, pb.user);
            let ta: Vec<(u64, usize)> = pa
                .submissions
                .iter()
                .map(|s| (s.at_us, s.template))
                .collect();
            let tb: Vec<(u64, usize)> = pb
                .submissions
                .iter()
                .map(|s| (s.at_us, s.template))
                .collect();
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn users_get_distinct_streams() {
        let spec = WorkloadSpec {
            users: 2,
            queries_per_user: 8,
            arrival: ArrivalProcess::Poisson {
                mean_interarrival_us: 50_000,
            },
            mix: QueryMix::single(Q),
            seed: 7,
            ..WorkloadSpec::default()
        };
        let plans = spec.plan().unwrap();
        let t0: Vec<u64> = plans[0].submissions.iter().map(|s| s.at_us).collect();
        let t1: Vec<u64> = plans[1].submissions.iter().map(|s| s.at_us).collect();
        assert_ne!(t0, t1, "independent per-user arrival streams");
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let arrival = ArrivalProcess::Poisson {
            mean_interarrival_us: 10_000,
        };
        let n = 4_000;
        let total: u64 = (0..n).map(|_| arrival.sample_us(0, &mut rng)).sum();
        let mean = total / n;
        assert!((8_000..12_000).contains(&mean), "sampled mean {mean}");
    }

    #[test]
    fn uniform_arrivals_are_exact() {
        let spec = WorkloadSpec {
            users: 1,
            queries_per_user: 3,
            arrival: ArrivalProcess::Uniform {
                interarrival_us: 1_000,
            },
            mix: QueryMix::single(Q),
            ..WorkloadSpec::default()
        };
        let plans = spec.plan().unwrap();
        let times: Vec<u64> = plans[0].submissions.iter().map(|s| s.at_us).collect();
        assert_eq!(times, vec![1_000, 2_000, 3_000]);
    }

    #[test]
    fn zipf_weights_follow_the_inverse_power_curve() {
        let q2 = r#"select d.title from document d such that "http://site0.test/doc0.html" L* d"#;
        let mix = QueryMix::zipf(1000, &[Q, q2, Q, q2]);
        let weights: Vec<u32> = mix.templates.iter().map(|(_, w)| *w).collect();
        assert_eq!(weights, vec![1_000_000, 500_000, 333_333, 250_000]);
        // s = 0 degenerates to a uniform mix.
        let flat = QueryMix::zipf(0, &[Q, q2]);
        let flat_w: Vec<u32> = flat.templates.iter().map(|(_, w)| *w).collect();
        assert_eq!(flat_w, vec![1_000_000, 1_000_000]);
    }

    #[test]
    fn zipf_plans_favor_the_head_template_and_stay_deterministic() {
        let q2 = r#"select d.title from document d such that "http://site0.test/doc0.html" L* d"#;
        let spec = WorkloadSpec {
            users: 4,
            queries_per_user: 64,
            arrival: ArrivalProcess::Uniform {
                interarrival_us: 1_000,
            },
            mix: QueryMix::zipf(1000, &[Q, q2, Q]),
            seed: 17,
            ..WorkloadSpec::default()
        };
        let plans = spec.plan().unwrap();
        let mut counts = [0usize; 3];
        for plan in &plans {
            for s in &plan.submissions {
                counts[s.template] += 1;
            }
        }
        assert!(
            counts[0] > counts[1] && counts[1] > counts[2],
            "rank order should dominate draw counts: {counts:?}"
        );
        // Re-planning the same spec reproduces the same template choices.
        let again = spec.plan().unwrap();
        for (pa, pb) in plans.iter().zip(&again) {
            let ta: Vec<usize> = pa.submissions.iter().map(|s| s.template).collect();
            let tb: Vec<usize> = pb.submissions.iter().map(|s| s.template).collect();
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn burst_then_tail_separates_the_two_regimes() {
        let spec = WorkloadSpec {
            users: 2,
            queries_per_user: 8,
            arrival: ArrivalProcess::BurstThenTail {
                burst: 4,
                burst_mean_us: 1_000,
                tail_mean_us: 1_000_000,
            },
            mix: QueryMix::single(Q),
            seed: 18,
            ..WorkloadSpec::default()
        };
        let plans = spec.plan().unwrap();
        for plan in &plans {
            let times: Vec<u64> = plan.submissions.iter().map(|s| s.at_us).collect();
            // The whole burst lands well before the first tail arrival:
            // even a generous burst draw is tiny next to a tail gap.
            assert!(
                times[3] < 100_000,
                "burst should clump near zero: {times:?}"
            );
            assert!(
                times[4] - times[3] > 100_000,
                "tail gaps should dwarf burst gaps: {times:?}"
            );
        }
        // Deterministic like every other arrival shape.
        let again = spec.plan().unwrap();
        for (pa, pb) in plans.iter().zip(&again) {
            let ta: Vec<u64> = pa.submissions.iter().map(|s| s.at_us).collect();
            let tb: Vec<u64> = pb.submissions.iter().map(|s| s.at_us).collect();
            assert_eq!(ta, tb);
        }
        assert_eq!(spec.arrival.mean_us(), 1_000);
    }

    #[test]
    fn bad_template_surfaces_before_running() {
        let spec = WorkloadSpec {
            mix: QueryMix::single("select nonsense"),
            ..WorkloadSpec::default()
        };
        assert!(spec.plan().is_err());
    }
}
