//! Living-web properties of the sim driver: schedule seed-determinism,
//! run replayability, and the staleness contract's row envelope.
//!
//! Three invariants over arbitrary (web, schedule, workload) seeds:
//!
//! 1. `MutationSchedule::generate` is a pure function of its inputs.
//! 2. Two live runs of the same seeds are byte-identical: same mutation
//!    history digest, same per-(user, query, stage, node) rows.
//! 3. Every row a live run reports appears in *some* frozen-web
//!    baseline of the same workload — pristine, or the snapshot after
//!    any mutation prefix. The web changing mid-run may move answers
//!    between versions, but it can never invent a row no version of
//!    the web would produce.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use webdis_core::EngineConfig;
use webdis_load::{
    run_workload_sim, run_workload_sim_live, ArrivalProcess, QueryMix, WorkloadOutcome,
    WorkloadSpec,
};
use webdis_sim::SimConfig;
use webdis_web::{generate, LiveWeb, MutationPlanConfig, MutationSchedule, WebGenConfig};

const GLOBAL_QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

const LOCAL_QUERY: &str = r#"
    select d.url, d.title
    from document d such that "http://site0.test/doc0.html" L* d
"#;

fn web_config() -> impl Strategy<Value = WebGenConfig> {
    (2usize..=4, 2usize..=3, any::<u64>()).prop_map(|(sites, docs, seed)| WebGenConfig {
        sites,
        docs_per_site: docs,
        extra_local_links: 1,
        extra_global_links: 1,
        title_needle_prob: 0.5,
        seed,
        ..WebGenConfig::default()
    })
}

fn plan_config() -> impl Strategy<Value = MutationPlanConfig> {
    (any::<u64>(), 1usize..=3).prop_map(|(seed, count)| MutationPlanConfig {
        seed,
        count,
        start_us: 10_000,
        end_us: 150_000,
        token: "prop".to_owned(),
    })
}

fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        users: 2,
        queries_per_user: 2,
        arrival: ArrivalProcess::Poisson {
            mean_interarrival_us: 40_000,
        },
        mix: QueryMix::single(GLOBAL_QUERY).with(LOCAL_QUERY, 1),
        seed,
        ..WorkloadSpec::default()
    }
}

fn engine() -> EngineConfig {
    EngineConfig {
        doc_cache_size: 8,
        ..EngineConfig::default()
    }
}

/// Canonical row rendering: one line per reported row, keyed by the
/// submitting user, query number, stage, and producing node.
fn row_lines(outcome: &WorkloadOutcome) -> Vec<String> {
    let mut lines = Vec::new();
    for r in &outcome.records {
        for (stage, rows) in &r.results {
            for (node, row) in rows {
                lines.push(format!("{}#{}:{stage}:{node}:{row}", r.user, r.query_num));
            }
        }
    }
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1: the schedule is a pure function of (web, config).
    #[test]
    fn schedule_generation_is_seed_deterministic(
        web_cfg in web_config(),
        plan_cfg in plan_config(),
    ) {
        let web = generate(&web_cfg);
        let a = MutationSchedule::generate(&web, &plan_cfg);
        let b = MutationSchedule::generate(&web, &plan_cfg);
        prop_assert_eq!(&a, &b, "same seeds must yield the same schedule");
        prop_assert_eq!(a.events.len(), plan_cfg.count);
    }

    /// Invariants 2 and 3: live runs replay bit-identically, and every
    /// live row exists in the union of the per-version frozen baselines.
    #[test]
    fn live_runs_replay_and_rows_stay_inside_the_version_envelope(
        web_cfg in web_config(),
        plan_cfg in plan_config(),
        workload_seed in any::<u64>(),
    ) {
        let web = generate(&web_cfg);
        let schedule = MutationSchedule::generate(&web, &plan_cfg);
        let spec = spec(workload_seed);

        let run = |schedule: &MutationSchedule| {
            let live = Arc::new(LiveWeb::from_hosted(&web));
            let outcome = run_workload_sim_live(
                Arc::clone(&live),
                schedule,
                &spec,
                engine(),
                SimConfig::default(),
            )
            .expect("live run");
            (live.history_digest(), live.mutations_applied(), outcome)
        };
        let (digest_a, applied_a, outcome_a) = run(&schedule);
        let (digest_b, applied_b, outcome_b) = run(&schedule);

        prop_assert_eq!(digest_a, digest_b, "history digest must replay");
        prop_assert_eq!(applied_a, applied_b);
        prop_assert_eq!(applied_a, schedule.events.len() as u64);
        prop_assert_eq!(
            row_lines(&outcome_a),
            row_lines(&outcome_b),
            "per-(user, query, stage, node) rows must replay byte-identically"
        );
        prop_assert_eq!(outcome_a.duration_us, outcome_b.duration_us);

        // The envelope: the pristine web plus the snapshot after every
        // mutation prefix, each run fault-free and frozen.
        let mut envelope: BTreeSet<String> = BTreeSet::new();
        let frozen = |web| {
            run_workload_sim(Arc::new(web), &spec, engine(), SimConfig::default())
                .expect("frozen baseline")
        };
        envelope.extend(row_lines(&frozen(web.clone())));
        let twin = LiveWeb::from_hosted(&web);
        for m in &schedule.events {
            twin.apply(m);
            envelope.extend(row_lines(&frozen(twin.snapshot())));
        }
        for line in row_lines(&outcome_a) {
            prop_assert!(
                envelope.contains(&line),
                "live row {line:?} not produced by any version of the web"
            );
        }
    }
}
