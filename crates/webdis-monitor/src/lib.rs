//! Live observability for WEBDIS: windowed time-series, an in-flight
//! query registry, and a deterministic alert-rule engine.
//!
//! webdis-doctor is strictly post-hoc — it reads a finished JSONL trace
//! — and `/metrics` exposes only monotone counters and cumulative
//! high-water gauges. Neither can tell you, *while the system runs*,
//! that a shed storm started forty seconds ago or that one site's queue
//! has been deep for the last three windows. This crate is that layer:
//!
//! * **Windowed series** ([`WindowRow`]): the registry snapshot is
//!   sampled on a driver tick (virtual time in SimNet, wall clock on
//!   TCP) and folded into fixed-width windows — per-window counter
//!   deltas, gauge marks, and windowed histogram quantiles — kept in a
//!   bounded ring. Same seed in sim ⇒ byte-identical series.
//! * **In-flight registry** ([`InflightStatus`]): every admitted query
//!   with its current site, stage, hop depth, clone fan-out, and age,
//!   retired when its termination is recorded.
//! * **Alert rules** ([`AlertRule`]): declarative threshold and
//!   multi-window burn-rate conditions over the windowed signals. Each
//!   window close evaluates every rule in order; transitions emit
//!   `AlertFired`/`AlertResolved` trace events and append to a
//!   deterministic [`AlertLogEntry`] log.
//!
//! Everything is integer arithmetic (fixed-point milli-units for
//! fractional signals), `BTreeMap`-ordered, and driven exclusively by
//! timestamps handed in by the caller — the monitor never reads a
//! clock, which is what makes the sim-mode output reproducible.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use webdis_trace::{Histogram, QueryId, RegistrySnapshot, TraceEvent, TraceHandle, TraceRecord};

mod json;
mod status;

pub use status::{InflightStatus, StatusSnapshot};

/// The synthetic site name alert trace records carry.
pub const MONITOR_SITE: &str = "monitor";

/// One windowed signal an [`AlertRule`] watches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signal {
    /// A counter's per-window delta as a rate: milli-events per second.
    CounterRate(String),
    /// `num / (den[0] + den[1] + …)` over per-window deltas, in milli
    /// (0..=1000 for a true fraction). Undefined (window skipped) when
    /// the denominator delta is zero.
    CounterRatio {
        /// Numerator counter.
        num: String,
        /// Denominator counters, summed.
        den: Vec<String>,
    },
    /// A high-water gauge's mark at window close, in milli-units. The
    /// underlying gauges are cumulative marks: once raised they stay
    /// raised until `reset_high_water`, so an `Above` rule on one
    /// resolves only after an explicit reset.
    GaugeHighWater(String),
    /// The p95 of a histogram's *per-window* observations (delta
    /// counts), in milli-units of the histogram's native unit.
    HistogramP95(String),
}

impl Signal {
    /// Registry names this signal reads (so the sampler tracks them).
    fn names(&self) -> Vec<&str> {
        match self {
            Signal::CounterRate(n) | Signal::GaugeHighWater(n) | Signal::HistogramP95(n) => {
                vec![n.as_str()]
            }
            Signal::CounterRatio { num, den } => {
                let mut v = vec![num.as_str()];
                v.extend(den.iter().map(|d| d.as_str()));
                v
            }
        }
    }
}

/// The alerting comparison, against fixed-point milli-units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Breach when the signal exceeds the threshold.
    Above(u64),
    /// Breach when the signal falls below the threshold.
    Below(u64),
}

impl Condition {
    fn breached(self, value_milli: u64) -> bool {
        match self {
            Condition::Above(t) => value_milli > t,
            Condition::Below(t) => value_milli < t,
        }
    }

    /// The threshold in milli-units (for the alert log and events).
    pub fn threshold_milli(self) -> u64 {
        match self {
            Condition::Above(t) | Condition::Below(t) => t,
        }
    }
}

/// One declarative alert rule, evaluated at every window close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertRule {
    /// Stable rule name (trace events and the alert log carry it).
    pub name: String,
    /// The windowed signal watched.
    pub signal: Signal,
    /// The breach condition on the signal's milli-value.
    pub condition: Condition,
    /// Consecutive breached windows required to fire.
    pub for_windows: u32,
    /// Consecutive clear windows required to resolve once fired.
    pub clear_windows: u32,
    /// Multi-window burn rate: when set, a window only counts as
    /// breached if the condition *also* holds on the average of the
    /// last `n` window values — the classic short-AND-long burn pair
    /// that keeps a single-window spike from paging.
    pub burn_windows: Option<u32>,
}

/// The default rule set: the five signals the ISSUE calls out. The
/// thresholds are deliberately conservative — they stay quiet on the
/// healthy baseline workloads and trip under the t18 overload burst.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "shed_rate_burn".into(),
            signal: Signal::CounterRate("query_shed".into()),
            condition: Condition::Above(1_000), // > 1 shed/s
            for_windows: 1,
            clear_windows: 2,
            burn_windows: Some(5),
        },
        AlertRule {
            name: "p95_latency_high".into(),
            signal: Signal::HistogramP95("query_latency_us".into()),
            condition: Condition::Above(2_000_000_000), // p95 > 2 s
            for_windows: 3,
            clear_windows: 3,
            burn_windows: None,
        },
        AlertRule {
            name: "queue_depth_high".into(),
            signal: Signal::GaugeHighWater("queue_depth_high_water".into()),
            condition: Condition::Above(64_000), // mark > 64 deliveries
            for_windows: 3,
            clear_windows: 3,
            burn_windows: None,
        },
        AlertRule {
            name: "cache_hit_rate_low".into(),
            signal: Signal::CounterRatio {
                num: "cache.hit".into(),
                den: vec!["cache.hit".into(), "cache.miss".into()],
            },
            condition: Condition::Below(100), // < 10% of lookups hit
            for_windows: 5,
            clear_windows: 5,
            burn_windows: None,
        },
        AlertRule {
            name: "log_high_water_high".into(),
            signal: Signal::GaugeHighWater("log_len_high_water".into()),
            condition: Condition::Above(512_000), // mark > 512 entries
            for_windows: 3,
            clear_windows: 3,
            burn_windows: None,
        },
    ]
}

/// Monitor configuration: window geometry, the tracked series, and the
/// rule set. Names referenced by rules are tracked automatically.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Window width in microseconds.
    pub window_us: u64,
    /// Closed windows kept in the ring (older ones age out of the
    /// series view; the alert log and counts are never truncated).
    pub ring_windows: usize,
    /// Counters tracked as per-window deltas.
    pub counters: Vec<String>,
    /// Gauges sampled at window close.
    pub gauges: Vec<String>,
    /// Histograms tracked as per-window delta quantiles.
    pub histograms: Vec<String>,
    /// The alert rules, evaluated in order at every window close.
    pub rules: Vec<AlertRule>,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            window_us: 100_000,
            ring_windows: 64,
            counters: vec![
                "query_sent".into(),
                "query_recv".into(),
                "query_shed".into(),
                "termination".into(),
                "cache.hit".into(),
                "cache.miss".into(),
            ],
            gauges: vec![
                "queue_depth_high_water".into(),
                "log_len_high_water".into(),
                "admission_occupancy_high_water".into(),
            ],
            histograms: vec![
                "hop_latency_us".into(),
                "query_latency_us".into(),
                "stage_us.queue_wait".into(),
                "stage_us.eval".into(),
            ],
            rules: default_rules(),
        }
    }
}

/// Windowed quantiles of one histogram's per-window observations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowQuantiles {
    /// Observations that landed in this window.
    pub count: u64,
    /// Sum of this window's observations.
    pub sum: u64,
    /// Windowed median estimate.
    pub p50: u64,
    /// Windowed p95 estimate.
    pub p95: u64,
}

/// One closed window of the time-series ring.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowRow {
    /// Window index (`end_us = (index + 1) * window_us`).
    pub index: u64,
    /// The window's closing timestamp, µs.
    pub end_us: u64,
    /// Per-window counter deltas (zero entries are kept out).
    pub counters: BTreeMap<String, u64>,
    /// Gauge marks sampled at close (cumulative high-water values).
    pub gauges: BTreeMap<String, u64>,
    /// Windowed histogram quantiles (empty windows are kept out).
    pub quantiles: BTreeMap<String, WindowQuantiles>,
}

/// One line of the deterministic alert log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertLogEntry {
    /// Log sequence number, from 0.
    pub seq: u64,
    /// The closing timestamp of the window that transitioned the rule.
    pub time_us: u64,
    /// That window's index.
    pub window: u64,
    /// The rule's name.
    pub rule: String,
    /// True for fired, false for resolved.
    pub fired: bool,
    /// The signal value at the transition, milli-units.
    pub value_milli: u64,
    /// The rule's threshold, milli-units.
    pub threshold_milli: u64,
}

/// Sampled registry values the window bookkeeping works from.
#[derive(Debug, Clone, Default)]
struct Sampled {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

#[derive(Debug, Default)]
struct RuleState {
    firing: bool,
    breach_streak: u32,
    clear_streak: u32,
    /// Recent window values for the burn-rate average, newest last.
    history: VecDeque<u64>,
}

#[derive(Debug, Clone, Default)]
struct Inflight {
    submitted_us: u64,
    site: String,
    stage: u32,
    hops: u32,
    clones_recv: u64,
    fanout: u64,
}

type InflightKey = (String, String, u16, u64);

#[derive(Default)]
struct MonitorState {
    /// The open window: its index and the latest sample seen inside it.
    cur: Option<(u64, Sampled)>,
    /// Cumulative values at the last closed window boundary.
    baseline: Sampled,
    windows: VecDeque<WindowRow>,
    closed: u64,
    rules: Vec<RuleState>,
    alert_log: Vec<AlertLogEntry>,
    inflight: BTreeMap<InflightKey, Inflight>,
    admitted: u64,
    retired: u64,
}

/// The monitor: owns the windowed series, the alert engine, and the
/// in-flight registry. Shared through [`MonitorHandle`].
pub struct Monitor {
    cfg: MonitorConfig,
    tracer: TraceHandle,
    /// Union of configured series names and rule-referenced names.
    tracked_counters: Vec<String>,
    tracked_gauges: Vec<String>,
    tracked_hists: Vec<String>,
    state: Mutex<MonitorState>,
}

fn inflight_key(id: &QueryId) -> InflightKey {
    (id.user.clone(), id.host.clone(), id.port, id.query_num)
}

impl Monitor {
    fn new(cfg: MonitorConfig, tracer: TraceHandle) -> Monitor {
        let mut counters = cfg.counters.clone();
        let mut gauges = cfg.gauges.clone();
        let mut hists = cfg.histograms.clone();
        for rule in &cfg.rules {
            for name in rule.signal.names() {
                let list = match rule.signal {
                    Signal::GaugeHighWater(_) => &mut gauges,
                    Signal::HistogramP95(_) => &mut hists,
                    _ => &mut counters,
                };
                if !list.iter().any(|n| n == name) {
                    list.push(name.to_string());
                }
            }
        }
        counters.sort();
        gauges.sort();
        hists.sort();
        let state = MonitorState {
            rules: cfg.rules.iter().map(|_| RuleState::default()).collect(),
            ..MonitorState::default()
        };
        Monitor {
            cfg,
            tracer,
            tracked_counters: counters,
            tracked_gauges: gauges,
            tracked_hists: hists,
            state: Mutex::new(state),
        }
    }

    /// The window index `now_us` falls in, under the `(iW, (i+1)W]`
    /// convention — a sample taken exactly at a window boundary closes
    /// that window rather than opening the next.
    fn window_of(&self, now_us: u64) -> u64 {
        now_us.saturating_sub(1) / self.cfg.window_us.max(1)
    }

    fn sample(&self, snap: &RegistrySnapshot) -> Sampled {
        let mut s = Sampled::default();
        for name in &self.tracked_counters {
            let v = snap.counter(name);
            if v > 0 {
                s.counters.insert(name.clone(), v);
            }
        }
        for name in &self.tracked_gauges {
            let v = snap.gauge(name);
            if v > 0 {
                s.gauges.insert(name.clone(), v);
            }
        }
        for name in &self.tracked_hists {
            if let Some(h) = snap.histogram(name) {
                if h.count > 0 {
                    s.hists.insert(name.clone(), h.clone());
                }
            }
        }
        s
    }

    /// Folds one registry snapshot into the series. `now_us` is virtual
    /// time on the simulator, wall-clock µs on TCP; it must be
    /// monotone. Crossing a window boundary closes every window up to
    /// the current one (quiet gaps become explicit zero-delta windows,
    /// which is what lets burn rates decay and alerts resolve during
    /// silence) and evaluates the alert rules per closed window.
    pub fn ingest(&self, now_us: u64, snap: &RegistrySnapshot) {
        let sampled = self.sample(snap);
        let w = self.window_of(now_us);
        let mut state = self.state.lock();
        match state.cur.take() {
            None => state.cur = Some((w, sampled)),
            Some((cur_w, latest)) if w <= cur_w => {
                state.cur = Some((cur_w, sampled.merged_over(latest)));
            }
            Some((cur_w, latest)) => {
                self.close_window(&mut state, cur_w, latest.clone());
                // Quiet gap: no sample landed in these windows, so their
                // deltas are zero and their gauges hold the last marks.
                for gap in cur_w + 1..w {
                    self.close_window(&mut state, gap, latest.clone());
                }
                state.cur = Some((w, sampled));
            }
        }
    }

    /// Closes the open window, if any — the end-of-run flush so the
    /// final partial window reaches the series and the alert engine.
    pub fn finalize(&self, now_us: u64, snap: &RegistrySnapshot) {
        self.ingest(now_us, snap);
        let mut state = self.state.lock();
        if let Some((w, latest)) = state.cur.take() {
            self.close_window(&mut state, w, latest);
        }
    }

    fn close_window(&self, state: &mut MonitorState, index: u64, latest: Sampled) {
        let end_us = (index + 1).saturating_mul(self.cfg.window_us);
        let mut row = WindowRow {
            index,
            end_us,
            ..WindowRow::default()
        };
        for (name, &v) in &latest.counters {
            let delta = v.saturating_sub(state.baseline.counters.get(name).copied().unwrap_or(0));
            if delta > 0 {
                row.counters.insert(name.clone(), delta);
            }
        }
        row.gauges = latest.gauges.clone();
        for (name, h) in &latest.hists {
            let delta = match state.baseline.hists.get(name) {
                Some(base) => delta_histogram(h, base),
                None => h.clone(),
            };
            if delta.count > 0 {
                row.quantiles.insert(
                    name.clone(),
                    WindowQuantiles {
                        count: delta.count,
                        sum: delta.sum,
                        p50: delta.quantile(0.50),
                        p95: delta.quantile(0.95),
                    },
                );
            }
        }
        self.evaluate_rules(state, &row);
        state.baseline = latest;
        state.windows.push_back(row);
        while state.windows.len() > self.cfg.ring_windows.max(1) {
            state.windows.pop_front();
        }
        state.closed += 1;
    }

    fn signal_value(&self, row: &WindowRow, signal: &Signal) -> Option<u64> {
        match signal {
            Signal::CounterRate(name) => {
                let delta = row.counters.get(name).copied().unwrap_or(0);
                Some(delta.saturating_mul(1_000_000_000) / self.cfg.window_us.max(1))
            }
            Signal::CounterRatio { num, den } => {
                let d: u64 = den
                    .iter()
                    .map(|n| row.counters.get(n).copied().unwrap_or(0))
                    .sum();
                if d == 0 {
                    return None;
                }
                let n = row.counters.get(num).copied().unwrap_or(0);
                Some(n.saturating_mul(1_000) / d)
            }
            Signal::GaugeHighWater(name) => Some(
                row.gauges
                    .get(name)
                    .copied()
                    .unwrap_or(0)
                    .saturating_mul(1_000),
            ),
            Signal::HistogramP95(name) => Some(
                row.quantiles
                    .get(name)
                    .map(|q| q.p95)
                    .unwrap_or(0)
                    .saturating_mul(1_000),
            ),
        }
    }

    fn evaluate_rules(&self, state: &mut MonitorState, row: &WindowRow) {
        for (rule, rs) in self.cfg.rules.iter().zip(state.rules.iter_mut()) {
            let Some(value) = self.signal_value(row, &rule.signal) else {
                // Undefined this window (e.g. a ratio with no samples):
                // streaks and history hold.
                continue;
            };
            if let Some(burn) = rule.burn_windows {
                rs.history.push_back(value);
                while rs.history.len() > burn as usize {
                    rs.history.pop_front();
                }
            }
            let mut breached = rule.condition.breached(value);
            if breached {
                if let Some(_burn) = rule.burn_windows {
                    let sum: u64 = rs.history.iter().sum();
                    let avg = sum / rs.history.len().max(1) as u64;
                    breached = rule.condition.breached(avg);
                }
            }
            if breached {
                rs.breach_streak += 1;
                rs.clear_streak = 0;
            } else {
                rs.clear_streak += 1;
                rs.breach_streak = 0;
            }
            let transition = if !rs.firing && rs.breach_streak >= rule.for_windows.max(1) {
                rs.firing = true;
                Some(true)
            } else if rs.firing && rs.clear_streak >= rule.clear_windows.max(1) {
                rs.firing = false;
                Some(false)
            } else {
                None
            };
            if let Some(fired) = transition {
                let threshold_milli = rule.condition.threshold_milli();
                let entry = AlertLogEntry {
                    seq: state.alert_log.len() as u64,
                    time_us: row.end_us,
                    window: row.index,
                    rule: rule.name.clone(),
                    fired,
                    value_milli: value,
                    threshold_milli,
                };
                self.tracer.emit_with(|| TraceRecord {
                    time_us: entry.time_us,
                    site: MONITOR_SITE.to_string(),
                    query: None,
                    hop: None,
                    event: if fired {
                        TraceEvent::AlertFired {
                            rule: rule.name.clone(),
                            value_milli: value,
                            threshold_milli,
                        }
                    } else {
                        TraceEvent::AlertResolved {
                            rule: rule.name.clone(),
                            value_milli: value,
                        }
                    },
                });
                state.alert_log.push(entry);
            }
        }
    }

    // ----- in-flight registry hooks (called from the engine) -----

    /// A query was admitted at its user site.
    pub fn admit(&self, id: &QueryId, now_us: u64) {
        let mut state = self.state.lock();
        state.admitted += 1;
        state.inflight.insert(
            inflight_key(id),
            Inflight {
                submitted_us: now_us,
                site: id.host.clone(),
                ..Inflight::default()
            },
        );
    }

    /// A clone of the query arrived at `site` in `stage` at hop `hop`.
    pub fn clone_recv(&self, id: &QueryId, site: &str, stage: u32, hop: u32) {
        let mut state = self.state.lock();
        if let Some(entry) = state.inflight.get_mut(&inflight_key(id)) {
            entry.site = site.to_string();
            entry.stage = entry.stage.max(stage);
            entry.hops = entry.hops.max(hop);
            entry.clones_recv += 1;
        }
    }

    /// A processed clone forwarded to `fanout` successor sites.
    pub fn clone_sent(&self, id: &QueryId, fanout: u32) {
        let mut state = self.state.lock();
        if let Some(entry) = state.inflight.get_mut(&inflight_key(id)) {
            entry.fanout += u64::from(fanout);
        }
    }

    /// The query terminated (any reason — completion, shed, expiry).
    pub fn retire(&self, id: &QueryId) {
        let mut state = self.state.lock();
        if state.inflight.remove(&inflight_key(id)).is_some() {
            state.retired += 1;
        }
    }

    // ----- read side -----

    /// The configured window width, µs.
    pub fn window_us(&self) -> u64 {
        self.cfg.window_us
    }

    /// The closed windows currently in the ring, oldest first.
    pub fn windows(&self) -> Vec<WindowRow> {
        self.state.lock().windows.iter().cloned().collect()
    }

    /// Total closed windows (including any that aged out of the ring).
    pub fn windows_closed(&self) -> u64 {
        self.state.lock().closed
    }

    /// The full alert log, oldest first.
    pub fn alert_log(&self) -> Vec<AlertLogEntry> {
        self.state.lock().alert_log.clone()
    }

    /// Fired (`fired = true`) log entries for `rule`.
    pub fn fired_count(&self, rule: &str) -> u64 {
        self.state
            .lock()
            .alert_log
            .iter()
            .filter(|e| e.fired && e.rule == rule)
            .count() as u64
    }

    /// A point-in-time status snapshot: in-flight queries, active
    /// alerts, window/admission tallies.
    pub fn status(&self, now_us: u64) -> StatusSnapshot {
        let state = self.state.lock();
        let active_alerts: Vec<String> = self
            .cfg
            .rules
            .iter()
            .zip(state.rules.iter())
            .filter(|(_, rs)| rs.firing)
            .map(|(r, _)| r.name.clone())
            .collect();
        let inflight = state
            .inflight
            .iter()
            .map(|((user, host, port, query_num), e)| InflightStatus {
                user: user.clone(),
                host: host.clone(),
                port: *port,
                query_num: *query_num,
                submitted_us: e.submitted_us,
                age_us: now_us.saturating_sub(e.submitted_us),
                site: e.site.clone(),
                stage: e.stage,
                hops: e.hops,
                clones_recv: e.clones_recv,
                fanout: e.fanout,
            })
            .collect();
        StatusSnapshot {
            now_us,
            windows_closed: state.closed,
            admitted: state.admitted,
            retired: state.retired,
            active_alerts,
            inflight,
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Monitor")
            .field("window_us", &self.cfg.window_us)
            .field("closed", &state.closed)
            .field("inflight", &state.inflight.len())
            .field("alerts", &state.alert_log.len())
            .finish()
    }
}

/// `cur - base` for cumulative histograms: the observations that landed
/// between the two snapshots. The min/max pins cannot be windowed from
/// cumulative state, so the delta carries `min = 0` and the cumulative
/// max — its quantiles are bucket estimates, deterministic but without
/// the single-sample exactness of a full histogram.
fn delta_histogram(cur: &Histogram, base: &Histogram) -> Histogram {
    let mut d = Histogram {
        max: cur.max,
        ..Histogram::default()
    };
    for (slot, (&c, &b)) in d
        .counts
        .iter_mut()
        .zip(cur.counts.iter().zip(base.counts.iter()))
    {
        *slot = c.saturating_sub(b);
    }
    d.count = cur.count.saturating_sub(base.count);
    d.sum = cur.sum.saturating_sub(base.sum);
    d
}

impl Sampled {
    /// Later sample wins (counters and gauges are monotone); `old` only
    /// fills in series the newer snapshot no longer carries (it cannot
    /// happen with a registry, but keeps the fold total).
    fn merged_over(mut self, old: Sampled) -> Sampled {
        for (k, v) in old.counters {
            self.counters.entry(k).or_insert(v);
        }
        for (k, v) in old.gauges {
            self.gauges.entry(k).or_insert(v);
        }
        for (k, v) in old.hists {
            self.hists.entry(k).or_insert(v);
        }
        self
    }
}

/// A clonable, debuggable handle to a shared [`Monitor`] — this is what
/// travels inside `EngineConfig`.
#[derive(Clone, Debug)]
pub struct MonitorHandle(Arc<Monitor>);

impl MonitorHandle {
    /// A monitor with the given config, emitting alert events into
    /// `tracer` (pass the same handle the engine traces through, so
    /// alerts land in the same stream as everything else).
    pub fn new(cfg: MonitorConfig, tracer: TraceHandle) -> MonitorHandle {
        MonitorHandle(Arc::new(Monitor::new(cfg, tracer)))
    }

    /// The default config over a tracer (the common construction).
    pub fn with_defaults(tracer: TraceHandle) -> MonitorHandle {
        MonitorHandle::new(MonitorConfig::default(), tracer)
    }

    /// The shared monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.0
    }
}

impl std::ops::Deref for MonitorHandle {
    type Target = Monitor;

    fn deref(&self) -> &Monitor {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdis_trace::Registry;

    fn handle() -> MonitorHandle {
        MonitorHandle::with_defaults(TraceHandle::noop())
    }

    fn qid(num: u64) -> QueryId {
        QueryId {
            user: "alice".into(),
            host: "user.test".into(),
            port: 9900,
            query_num: num,
        }
    }

    #[test]
    fn windows_hold_counter_deltas_not_totals() {
        let m = handle();
        let r = Registry::new();
        r.count("query_recv", 3);
        m.ingest(100_000, &r.snapshot());
        r.count("query_recv", 5);
        m.ingest(200_000, &r.snapshot());
        r.count("query_recv", 1);
        m.ingest(300_000, &r.snapshot());
        let rows = m.windows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].index, 0);
        assert_eq!(rows[0].end_us, 100_000);
        assert_eq!(rows[0].counters["query_recv"], 3);
        assert_eq!(rows[1].counters["query_recv"], 5);
        assert_eq!(m.windows_closed(), 2);
    }

    #[test]
    fn quiet_gaps_become_zero_delta_windows() {
        let m = handle();
        let r = Registry::new();
        r.count("query_recv", 2);
        r.gauge_max("queue_depth_high_water", 4);
        m.ingest(100_000, &r.snapshot());
        // Next sample lands four windows later.
        r.count("query_recv", 1);
        m.ingest(500_000, &r.snapshot());
        m.finalize(500_000, &r.snapshot());
        let rows = m.windows();
        assert_eq!(rows.len(), 5, "gap windows are explicit");
        assert_eq!(rows[0].counters["query_recv"], 2);
        for gap in &rows[1..4] {
            assert!(gap.counters.is_empty(), "gap windows carry no deltas");
            assert_eq!(
                gap.gauges["queue_depth_high_water"], 4,
                "gauge marks persist through gaps"
            );
        }
        assert_eq!(rows[4].counters["query_recv"], 1);
    }

    #[test]
    fn windowed_quantiles_use_per_window_observations() {
        let m = handle();
        let r = Registry::new();
        for _ in 0..10 {
            r.observe("hop_latency_us", 10);
        }
        m.ingest(100_000, &r.snapshot());
        for _ in 0..10 {
            r.observe("hop_latency_us", 50_000);
        }
        m.ingest(200_000, &r.snapshot());
        m.finalize(200_000, &r.snapshot());
        let rows = m.windows();
        let w0 = &rows[0].quantiles["hop_latency_us"];
        let w1 = &rows[1].quantiles["hop_latency_us"];
        assert_eq!(w0.count, 10);
        assert_eq!(w1.count, 10, "second window sees only its own delta");
        assert!(w1.p95 > w0.p95 * 100, "{} vs {}", w1.p95, w0.p95);
    }

    #[test]
    fn shed_burst_fires_then_resolves_the_burn_rule() {
        let (collector, tracer) = TraceHandle::collecting(256);
        let m = MonitorHandle::with_defaults(tracer);
        let r = Registry::new();
        // Three windows of heavy shedding…
        for w in 1..=3u64 {
            r.count("query_shed", 4); // 40/s at a 100 ms window
            m.ingest(w * 100_000, &r.snapshot());
        }
        // …then six quiet windows.
        for w in 4..=9u64 {
            m.ingest(w * 100_000, &r.snapshot());
        }
        m.finalize(910_000, &r.snapshot());
        let log = m.alert_log();
        let shed: Vec<&AlertLogEntry> = log.iter().filter(|e| e.rule == "shed_rate_burn").collect();
        assert_eq!(shed.len(), 2, "{log:?}");
        assert!(shed[0].fired);
        assert_eq!(shed[0].window, 0, "fires on the first breached window");
        assert_eq!(shed[0].value_milli, 40_000);
        assert!(!shed[1].fired);
        assert!(shed[1].window >= 4, "resolves after clear windows: {log:?}");
        assert_eq!(m.fired_count("shed_rate_burn"), 1);
        // The transitions also landed in the trace stream.
        let events: Vec<String> = collector
            .snapshot()
            .iter()
            .map(|rec| rec.event.name().to_string())
            .collect();
        assert!(events.contains(&"alert_fired".to_string()));
        assert!(events.contains(&"alert_resolved".to_string()));
    }

    #[test]
    fn ratio_rules_skip_windows_without_samples() {
        let mut cfg = MonitorConfig {
            rules: vec![AlertRule {
                name: "hit_low".into(),
                signal: Signal::CounterRatio {
                    num: "cache.hit".into(),
                    den: vec!["cache.hit".into(), "cache.miss".into()],
                },
                condition: Condition::Below(500),
                for_windows: 2,
                clear_windows: 1,
                burn_windows: None,
            }],
            ..MonitorConfig::default()
        };
        cfg.window_us = 100_000;
        let m = MonitorHandle::new(cfg, TraceHandle::noop());
        let r = Registry::new();
        // Window 0: all misses (ratio 0) — breach 1 of 2.
        r.count("cache.miss", 4);
        m.ingest(100_000, &r.snapshot());
        // Windows 1..=3: no lookups at all — skipped, streak holds.
        for w in 2..=4u64 {
            m.ingest(w * 100_000, &r.snapshot());
        }
        assert!(m.alert_log().is_empty(), "skipped windows must not fire");
        // Window 4: misses again — breach 2 of 2, fires.
        r.count("cache.miss", 4);
        m.ingest(500_000, &r.snapshot());
        m.ingest(600_000, &r.snapshot());
        let log = m.alert_log();
        assert_eq!(log.len(), 1, "{log:?}");
        assert!(log[0].fired);
    }

    #[test]
    fn same_feed_is_byte_identical() {
        let run = || {
            let m = handle();
            let r = Registry::new();
            for w in 1..=6u64 {
                r.count("query_shed", if w <= 2 { 3 } else { 0 });
                r.count("query_recv", w);
                r.observe("hop_latency_us", 100 * w);
                r.gauge_max("queue_depth_high_water", w);
                m.ingest(w * 100_000, &r.snapshot());
            }
            m.finalize(610_000, &r.snapshot());
            m.admit(&qid(1), 50);
            (m.series_json(), m.alert_log_json(), m.status_json(700_000))
        };
        assert_eq!(run(), run(), "same feed must reproduce byte-identically");
    }

    #[test]
    fn inflight_registry_tracks_lifecycle() {
        let m = handle();
        m.admit(&qid(1), 1_000);
        m.admit(&qid(2), 2_000);
        m.clone_recv(&qid(1), "site1.test", 0, 1);
        m.clone_recv(&qid(1), "site2.test", 1, 2);
        m.clone_sent(&qid(1), 3);
        let status = m.status(5_000);
        assert_eq!(status.admitted, 2);
        assert_eq!(status.retired, 0);
        assert_eq!(status.inflight.len(), 2);
        let q1 = &status.inflight[0];
        assert_eq!(q1.query_num, 1);
        assert_eq!(q1.site, "site2.test");
        assert_eq!(q1.stage, 1);
        assert_eq!(q1.hops, 2);
        assert_eq!(q1.clones_recv, 2);
        assert_eq!(q1.fanout, 3);
        assert_eq!(q1.age_us, 4_000);
        m.retire(&qid(1));
        m.retire(&qid(1)); // idempotent
        let status = m.status(6_000);
        assert_eq!(status.retired, 1);
        assert_eq!(status.inflight.len(), 1);
        assert_eq!(status.inflight[0].query_num, 2);
    }

    #[test]
    fn ring_caps_the_series_but_not_the_counts() {
        let cfg = MonitorConfig {
            ring_windows: 4,
            ..MonitorConfig::default()
        };
        let m = MonitorHandle::new(cfg, TraceHandle::noop());
        let r = Registry::new();
        for w in 1..=10u64 {
            r.count("query_recv", 1);
            m.ingest(w * 100_000, &r.snapshot());
        }
        assert_eq!(m.windows().len(), 4);
        assert_eq!(m.windows_closed(), 9);
        assert_eq!(m.windows()[0].index, 5, "oldest windows aged out");
    }
}
