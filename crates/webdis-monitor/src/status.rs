//! The `/status` snapshot: in-flight queries and active alerts at one
//! instant, with a JSON round-trip so `webdis-doctor --live` can poll
//! a daemon's admin socket and render the decoded structure.

use std::fmt::Write as _;

use crate::json::esc;

/// One in-flight (admitted, not yet terminated) query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InflightStatus {
    /// Login name at the user-site.
    pub user: String,
    /// User-site host.
    pub host: String,
    /// User-site result port.
    pub port: u16,
    /// Locally unique query number.
    pub query_num: u64,
    /// Admission timestamp, µs.
    pub submitted_us: u64,
    /// `now - submitted`, µs.
    pub age_us: u64,
    /// The site a clone was most recently seen at.
    pub site: String,
    /// The deepest pipeline stage any clone has reached.
    pub stage: u32,
    /// The deepest hop count any clone has reached.
    pub hops: u32,
    /// Clone arrivals recorded for this query.
    pub clones_recv: u64,
    /// Total clone fan-out (successor forwards) so far.
    pub fanout: u64,
}

/// A point-in-time view of the monitor, served as JSON on `/status`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatusSnapshot {
    /// The timestamp the snapshot was taken at, µs.
    pub now_us: u64,
    /// Windows closed so far.
    pub windows_closed: u64,
    /// Queries admitted so far.
    pub admitted: u64,
    /// Queries retired (terminated for any reason) so far.
    pub retired: u64,
    /// Names of rules currently firing, in rule order.
    pub active_alerts: Vec<String>,
    /// In-flight queries, ordered by (user, host, port, query_num).
    pub inflight: Vec<InflightStatus>,
}

impl StatusSnapshot {
    /// Renders the snapshot as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"now_us\":{},\"windows_closed\":{},\"admitted\":{},\"retired\":{}",
            self.now_us, self.windows_closed, self.admitted, self.retired
        );
        out.push_str(",\"active_alerts\":[");
        for (i, rule) in self.active_alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(rule));
        }
        out.push_str("],\"inflight\":[");
        for (i, q) in self.inflight.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"user\":\"{}\",\"host\":\"{}\",\"port\":{},\"query_num\":{},\
                 \"submitted_us\":{},\"age_us\":{},\"site\":\"{}\",\"stage\":{},\
                 \"hops\":{},\"clones_recv\":{},\"fanout\":{}}}",
                esc(&q.user),
                esc(&q.host),
                q.port,
                q.query_num,
                q.submitted_us,
                q.age_us,
                esc(&q.site),
                q.stage,
                q.hops,
                q.clones_recv,
                q.fanout
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses a snapshot back from its JSON form. Tolerates unknown
    /// keys (skipped), so older doctors keep working against newer
    /// daemons; missing keys default to zero/empty.
    pub fn from_json(text: &str) -> Result<StatusSnapshot, String> {
        let mut p = Parser::new(text);
        let mut snap = StatusSnapshot::default();
        p.object(|p, key| {
            match key {
                "now_us" => snap.now_us = p.number()?,
                "windows_closed" => snap.windows_closed = p.number()?,
                "admitted" => snap.admitted = p.number()?,
                "retired" => snap.retired = p.number()?,
                "active_alerts" => {
                    p.array(|p| {
                        snap.active_alerts.push(p.string()?);
                        Ok(())
                    })?;
                }
                "inflight" => {
                    p.array(|p| {
                        let mut q = InflightStatus::default();
                        p.object(|p, key| {
                            match key {
                                "user" => q.user = p.string()?,
                                "host" => q.host = p.string()?,
                                "port" => q.port = p.number()? as u16,
                                "query_num" => q.query_num = p.number()?,
                                "submitted_us" => q.submitted_us = p.number()?,
                                "age_us" => q.age_us = p.number()?,
                                "site" => q.site = p.string()?,
                                "stage" => q.stage = p.number()? as u32,
                                "hops" => q.hops = p.number()? as u32,
                                "clones_recv" => q.clones_recv = p.number()?,
                                "fanout" => q.fanout = p.number()?,
                                _ => p.skip_value()?,
                            }
                            Ok(())
                        })?;
                        snap.inflight.push(q);
                        Ok(())
                    })?;
                }
                _ => p.skip_value()?,
            }
            Ok(())
        })?;
        Ok(snap)
    }
}

/// A minimal JSON reader for the subset the monitor emits: objects,
/// arrays, strings with the escapes [`esc`] produces, and unsigned
/// integers. Anything else is a parse error.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).ok_or("bad \\u scalar")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// `{ "k": v, … }` — calls `field` positioned at each value.
    fn object(
        &mut self,
        mut field: impl FnMut(&mut Parser<'a>, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            field(self, &key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    /// `[ v, … ]` — calls `item` positioned at each element.
    fn array(
        &mut self,
        mut item: impl FnMut(&mut Parser<'a>) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            item(self)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    /// Skips one value of any supported shape (forward compatibility).
    fn skip_value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => self.string().map(|_| ()),
            Some(b'{') => self.object(|p, _| p.skip_value()),
            Some(b'[') => self.array(Parser::skip_value),
            Some(b) if b.is_ascii_digit() => self.number().map(|_| ()),
            other => Err(format!("cannot skip value starting with {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatusSnapshot {
        StatusSnapshot {
            now_us: 1_234_567,
            windows_closed: 12,
            admitted: 9,
            retired: 7,
            active_alerts: vec!["shed_rate_burn".into()],
            inflight: vec![
                InflightStatus {
                    user: "alice".into(),
                    host: "user.test".into(),
                    port: 9900,
                    query_num: 3,
                    submitted_us: 1_000_000,
                    age_us: 234_567,
                    site: "site2.test".into(),
                    stage: 4,
                    hops: 2,
                    clones_recv: 5,
                    fanout: 3,
                },
                InflightStatus {
                    user: "bob \"q\"".into(),
                    host: "user.test".into(),
                    port: 9901,
                    query_num: 1,
                    submitted_us: 1_100_000,
                    age_us: 134_567,
                    site: "site1.test".into(),
                    stage: 1,
                    hops: 1,
                    clones_recv: 1,
                    fanout: 0,
                },
            ],
        }
    }

    #[test]
    fn status_json_round_trips() {
        let snap = sample();
        let json = snap.to_json();
        let back = StatusSnapshot::from_json(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn parser_tolerates_unknown_keys_and_whitespace() {
        let json = r#" { "now_us" : 5 , "future_field" : { "a" : [ 1 , "x" ] } ,
                        "admitted" : 2 , "inflight" : [ ] } "#;
        let snap = StatusSnapshot::from_json(json).expect("parse");
        assert_eq!(snap.now_us, 5);
        assert_eq!(snap.admitted, 2);
        assert!(snap.inflight.is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(StatusSnapshot::from_json("not json").is_err());
        assert!(StatusSnapshot::from_json("{\"now_us\":}").is_err());
    }
}
