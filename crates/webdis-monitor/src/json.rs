//! JSON rendering for the monitor's read-side views.
//!
//! Everything is emitted by hand (no serde in the offline workspace)
//! over `BTreeMap`-ordered state, so the same monitor state always
//! renders to the same bytes — the property the determinism scenarios
//! pin. Numbers are unsigned integers only; fractional signals travel
//! as fixed-point milli-units.

use std::fmt::Write as _;

use crate::{Monitor, WindowRow};

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_map(out: &mut String, entries: impl Iterator<Item = (String, String)>) {
    out.push('{');
    let mut first = true;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", esc(&key), value);
    }
    out.push('}');
}

fn row_json(row: &WindowRow) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"index\":{},\"end_us\":{}", row.index, row.end_us);
    out.push_str(",\"counters\":");
    push_map(
        &mut out,
        row.counters.iter().map(|(k, v)| (k.clone(), v.to_string())),
    );
    out.push_str(",\"gauges\":");
    push_map(
        &mut out,
        row.gauges.iter().map(|(k, v)| (k.clone(), v.to_string())),
    );
    out.push_str(",\"quantiles\":");
    push_map(
        &mut out,
        row.quantiles.iter().map(|(k, q)| {
            (
                k.clone(),
                format!(
                    "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{}}}",
                    q.count, q.sum, q.p50, q.p95
                ),
            )
        }),
    );
    out.push('}');
    out
}

impl Monitor {
    /// The windowed series as one JSON document: window geometry, the
    /// total closed count, and the rows still in the ring (oldest
    /// first). Zero-delta entries are omitted from each row, which
    /// keeps quiet windows to a few bytes.
    pub fn series_json(&self) -> String {
        let rows = self.windows();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"window_us\":{},\"closed\":{},\"windows\":[",
            self.window_us(),
            self.windows_closed()
        );
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&row_json(row));
        }
        out.push_str("]}");
        out
    }

    /// The full alert log as a JSON array, oldest first.
    pub fn alert_log_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.alert_log().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"time_us\":{},\"window\":{},\"rule\":\"{}\",\
                 \"kind\":\"{}\",\"value_milli\":{},\"threshold_milli\":{}}}",
                e.seq,
                e.time_us,
                e.window,
                esc(&e.rule),
                if e.fired { "fired" } else { "resolved" },
                e.value_milli,
                e.threshold_milli
            );
        }
        out.push(']');
        out
    }

    /// [`Monitor::status`] rendered as JSON — this is what the TCP
    /// daemons serve on `/status`.
    pub fn status_json(&self, now_us: u64) -> String {
        self.status(now_us).to_json()
    }
}
