//! webdis-chaos: a deterministic chaos harness for the WEBDIS engine.
//!
//! The harness closes the loop the paper's Section 7 opens: WEBDIS
//! claims graceful recovery from site and link failures, so this crate
//! *generates* adversity and *checks* the claim. One master seed
//! expands into a stream of randomized fault schedules — message
//! drops, duplication, byte corruption, link partitions, and daemon
//! crash-restart windows over a generated web topology and DISQL
//! workload ([`FaultScheduleGen`]). Each schedule runs twice through
//! the simulator: once fault-free, once faulted, and an invariant
//! oracle ([`oracle::check`]) compares the two — liveness, row safety,
//! trace coherence (via the doctor's triage), and CHT convergence.
//!
//! When a schedule fails the oracle, [`shrink`] delta-debugs the fault
//! list down to a locally-minimal failing schedule, and [`repro`]
//! serializes it as a replayable `chaos-repro.json`. Everything is
//! seeded and float-free, so the same master seed yields byte-identical
//! verdicts ([`verdict_digest`]) on every run.

#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod plan;
pub mod repro;
pub mod run;
pub mod shrink;

pub use gen::FaultScheduleGen;
pub use oracle::{check, Violation};
pub use plan::{ChaosPlan, FaultSpec, ANY_HOST};
pub use run::{run_plan, run_tcp_smoke, verdict_digest, ChaosReport};
pub use shrink::{shrink, Shrunk};
