//! T14 — the chaos sweep: randomized fault schedules vs the invariant
//! oracle.
//!
//! Expands a master seed into N mixed fault schedules (drops,
//! duplication, corruption, partitions, crash-restart windows over
//! generated topologies and DISQL workloads), runs each against its
//! fault-free twin, and holds the run to the oracle: liveness, row
//! safety, trace coherence, CHT convergence. Prints one verdict line
//! per schedule plus an FNV digest over all of them — two runs of the
//! same master seed must print the same digest, byte for byte.
//!
//! On an oracle violation the harness delta-debugs the fault schedule
//! to a locally-minimal failing plan and (with `--out DIR`) writes it
//! as a replayable `chaos-repro.json`; `--replay FILE` re-runs such a
//! file and exits 0 iff the recorded violation kind reproduces.
//!
//! A TCP smoke (corruption + duplication + a daemon crash window over
//! real sockets on the paper's campus scenario) runs last unless
//! `--no-tcp`. `--smoke` shrinks the sweep for CI;
//! `--fail-on-violation` turns any violation into exit code 1.

use std::process::ExitCode;

use webdis_chaos::{repro, run_plan, run_tcp_smoke, shrink, verdict_digest, FaultScheduleGen};

const DEFAULT_SEED: u64 = 0xC4A05;
const DEFAULT_SCHEDULES: usize = 50;
const SMOKE_SCHEDULES: usize = 12;

struct Args {
    seed: u64,
    schedules: usize,
    fail_on_violation: bool,
    replay: Option<String>,
    out_dir: Option<String>,
    tcp: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: DEFAULT_SEED,
        schedules: DEFAULT_SCHEDULES,
        fail_on_violation: false,
        replay: None,
        out_dir: None,
        tcp: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--smoke" => args.schedules = SMOKE_SCHEDULES,
            "--schedules" => {
                args.schedules = value("--schedules")?
                    .parse()
                    .map_err(|e| format!("--schedules: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--fail-on-violation" => args.fail_on_violation = true,
            "--replay" => args.replay = Some(value("--replay")?),
            "--out" => args.out_dir = Some(value("--out")?),
            "--no-tcp" => args.tcp = false,
            other => {
                return Err(format!(
                    "unknown flag {other:?} (flags: --smoke --schedules N --seed S \
                     --fail-on-violation --replay FILE --out DIR --no-tcp)"
                ))
            }
        }
    }
    Ok(args)
}

/// Replays a `chaos-repro.json`: exit 0 iff the recorded violation kind
/// (or, when none was recorded, any violation) shows up again.
fn replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("t14_chaos: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (plan, recorded) = match repro::decode(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("t14_chaos: cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} fault(s), sim_seed {:#x}{}",
        plan.faults.len(),
        plan.sim_seed,
        match &recorded {
            Some(kind) => format!(", recorded violation {kind:?}"),
            None => String::new(),
        }
    );
    let report = match run_plan(&plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("t14_chaos: replay run failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{}", report.verdict_line());
    let reproduced = match &recorded {
        Some(kind) => report.has_kind(kind),
        None => !report.violations.is_empty(),
    };
    if reproduced {
        println!("replay: violation reproduced");
        ExitCode::SUCCESS
    } else {
        println!("replay: violation did NOT reproduce");
        ExitCode::from(2)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("t14_chaos: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay {
        return replay(path);
    }

    println!(
        "t14 chaos sweep: {} schedule(s), master seed {:#x}",
        args.schedules, args.seed
    );
    let gen = FaultScheduleGen::new(args.seed);
    let mut lines = Vec::with_capacity(args.schedules);
    let mut violation_count = 0usize;
    for i in 0..args.schedules {
        let plan = gen.plan(i);
        let report = match run_plan(&plan) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("t14_chaos: schedule {i} failed to run: {e}");
                return ExitCode::from(2);
            }
        };
        let line = report.verdict_line();
        println!(
            "schedule {i:>3}  [{} fault(s): {}]  {line}",
            plan.faults.len(),
            plan.faults
                .iter()
                .map(|f| f.kind())
                .collect::<Vec<_>>()
                .join(","),
        );
        if !report.violations.is_empty() {
            violation_count += 1;
            let kind = report.violations[0].kind();
            println!("  shrinking schedule {i} toward {kind:?}...");
            let shrunk = shrink(&plan, |candidate| {
                run_plan(candidate)
                    .map(|r| r.has_kind(kind))
                    .unwrap_or(false)
            });
            println!(
                "  minimal failing schedule: {} fault(s) after {} run(s)",
                shrunk.plan.faults.len(),
                shrunk.runs
            );
            let doc = repro::encode(&shrunk.plan, Some(kind));
            if let Some(dir) = &args.out_dir {
                let path = format!("{dir}/chaos-repro-{i}.json");
                match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &doc)) {
                    Ok(()) => println!("  wrote {path}"),
                    Err(e) => eprintln!("t14_chaos: cannot write {path}: {e}"),
                }
            } else {
                println!("  repro: {doc}");
            }
        }
        lines.push(line);
    }
    println!(
        "sweep: {}/{} schedule(s) upheld the oracle; verdict digest {:#018x}",
        args.schedules - violation_count,
        args.schedules,
        verdict_digest(&lines)
    );

    if args.tcp {
        println!("tcp smoke: corruption + duplication + crash window over real sockets...");
        match run_tcp_smoke() {
            Ok(violations) if violations.is_empty() => println!("tcp smoke: ok"),
            Ok(violations) => {
                violation_count += violations.len();
                for v in violations {
                    println!("tcp smoke: VIOLATION {v}");
                }
            }
            Err(e) => {
                eprintln!("t14_chaos: tcp smoke failed to run: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if args.fail_on_violation && violation_count > 0 {
        eprintln!("t14_chaos: {violation_count} violation(s) — failing as requested");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
