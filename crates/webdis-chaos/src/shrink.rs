//! Fault-schedule shrinking: from a failing plan to a locally-minimal
//! one.
//!
//! Delta-debugging over the fault list: repeatedly remove chunks of
//! faults (halves, then quarters, …) keeping any removal that still
//! reproduces a violation of the target kind, then polish to
//! 1-minimality by retrying every single-fault removal until none
//! succeeds. Every candidate is a full deterministic re-run, so the
//! result is reproducible: the same failing plan always shrinks to the
//! same minimal plan.

use crate::plan::ChaosPlan;

/// Outcome of a shrink.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The locally-minimal failing plan.
    pub plan: ChaosPlan,
    /// How many candidate runs the shrink spent.
    pub runs: usize,
}

/// Shrinks `plan`'s fault schedule to a locally-minimal one that still
/// makes `fails` return true. `fails` must be deterministic (run the
/// plan, check the oracle for the target violation kind). If the input
/// plan does not fail, it is returned unchanged.
pub fn shrink<F>(plan: &ChaosPlan, mut fails: F) -> Shrunk
where
    F: FnMut(&ChaosPlan) -> bool,
{
    let mut runs = 0usize;
    let mut try_fails = |candidate: &ChaosPlan, runs: &mut usize| {
        *runs += 1;
        fails(candidate)
    };
    if !try_fails(plan, &mut runs) {
        return Shrunk {
            plan: plan.clone(),
            runs,
        };
    }
    let mut current = plan.clone();

    // Chunked removal: coarse to fine.
    let mut chunks = 2usize;
    while current.faults.len() >= 2 {
        let len = current.faults.len();
        let chunk = len.div_ceil(chunks);
        let mut reduced = false;
        for i in 0..chunks {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(len);
            if lo >= hi {
                continue;
            }
            let mut faults = current.faults.clone();
            faults.drain(lo..hi);
            let candidate = current.with_faults(faults);
            if try_fails(&candidate, &mut runs) {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if reduced {
            chunks = chunks.saturating_sub(1).max(2);
        } else {
            if chunks >= len {
                break;
            }
            chunks = (chunks * 2).min(len);
        }
    }

    // 1-minimal polish: no single fault can still be removed.
    loop {
        let mut removed = false;
        for i in 0..current.faults.len() {
            let mut faults = current.faults.clone();
            faults.remove(i);
            let candidate = current.with_faults(faults);
            if try_fails(&candidate, &mut runs) {
                current = candidate;
                removed = true;
                break;
            }
        }
        if !removed {
            break;
        }
    }

    Shrunk {
        plan: current,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultSpec, ANY_HOST};

    fn rate_fault(ppm: u32) -> FaultSpec {
        FaultSpec::Drop {
            from: ANY_HOST.into(),
            to: ANY_HOST.into(),
            rate_ppm: ppm,
        }
    }

    /// A synthetic failure predicate: the plan "fails" iff fault with
    /// rate 777 survives — shrink must isolate exactly that fault.
    #[test]
    fn shrink_isolates_the_culprit_fault() {
        let plan = ChaosPlan {
            faults: vec![
                rate_fault(1),
                rate_fault(2),
                rate_fault(777),
                rate_fault(3),
                rate_fault(4),
                rate_fault(5),
            ],
            ..ChaosPlan::default()
        };
        let shrunk = shrink(&plan, |p| {
            p.faults
                .iter()
                .any(|f| matches!(f, FaultSpec::Drop { rate_ppm: 777, .. }))
        });
        assert_eq!(shrunk.plan.faults, vec![rate_fault(777)]);
    }

    /// Conjunctive failures (both faults needed) stay together.
    #[test]
    fn shrink_keeps_conjunctive_pairs() {
        let plan = ChaosPlan {
            faults: vec![rate_fault(1), rate_fault(10), rate_fault(2), rate_fault(20)],
            ..ChaosPlan::default()
        };
        let shrunk = shrink(&plan, |p| {
            let has = |target: u32| {
                p.faults
                    .iter()
                    .any(|f| matches!(f, FaultSpec::Drop { rate_ppm, .. } if *rate_ppm == target))
            };
            has(10) && has(20)
        });
        assert_eq!(shrunk.plan.faults, vec![rate_fault(10), rate_fault(20)]);
    }

    #[test]
    fn non_failing_plans_come_back_unchanged() {
        let plan = ChaosPlan {
            faults: vec![rate_fault(1), rate_fault(2)],
            ..ChaosPlan::default()
        };
        let shrunk = shrink(&plan, |_| false);
        assert_eq!(shrunk.plan, plan);
        assert_eq!(shrunk.runs, 1);
    }
}
