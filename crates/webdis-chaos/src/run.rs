//! Plan execution: the faulty run, its fault-free twin, and the
//! oracle verdict — plus the TCP smoke scenario that pushes the same
//! fault surface through real sockets.

use std::sync::Arc;
use std::time::Duration;

use webdis_bench::doctor;
use webdis_core::{run_query_tcp_faulty, EngineConfig, ExpiryPolicy, SimRunError, TcpFaultPlan};
use webdis_load::{run_workload_sim, run_workload_sim_live, WorkloadOutcome};
use webdis_trace::{TraceHandle, TraceRecord};
use webdis_web::LiveWeb;

use crate::oracle::{self, Violation};
use crate::plan::ChaosPlan;

/// Everything one executed plan exposes.
#[derive(Debug)]
pub struct ChaosReport {
    /// Oracle verdict (empty = all invariants held).
    pub violations: Vec<Violation>,
    /// The faulty run.
    pub faulty: WorkloadOutcome,
    /// The fault-free twins: one for a frozen plan; for a living plan,
    /// one per web content version (pristine first), whose union is the
    /// benign row envelope.
    pub baselines: Vec<WorkloadOutcome>,
    /// The faulty run's trace (the doctor's and the repro's evidence).
    pub records: Vec<TraceRecord>,
}

impl ChaosReport {
    /// A one-line verdict, stable across runs of the same plan — the
    /// unit the determinism check hashes.
    pub fn verdict_line(&self) -> String {
        if self.violations.is_empty() {
            format!(
                "ok: {} quer(ies) complete, {} rows",
                self.faulty.records.len(),
                self.faulty
                    .records
                    .iter()
                    .map(|r| r.result_set().len())
                    .sum::<usize>()
            )
        } else {
            let mut kinds: Vec<&str> = self.violations.iter().map(|v| v.kind()).collect();
            kinds.dedup();
            format!("VIOLATION[{}]: {}", kinds.join(","), self.violations[0])
        }
    }

    /// True when some violation carries the given kind label.
    pub fn has_kind(&self, kind: &str) -> bool {
        self.violations.iter().any(|v| v.kind() == kind)
    }
}

/// Runs a plan end to end: fault-free twin(s) first, then the faulty
/// run under a collecting tracer, then the oracle.
///
/// A plan with [`FaultSpec::Mutation`](crate::plan::FaultSpec) entries
/// runs its faulty leg on a **living** web whose mutation schedule
/// lands at exact virtual times mid-workload. Its fault-free twins are
/// one frozen run per web content version — the pristine web, then the
/// web after each successive mutation — so the oracle can separate
/// "the web changed" (rows drawn from *some* version: benign) from
/// "the engine lost or invented rows" (violation).
pub fn run_plan(plan: &ChaosPlan) -> Result<ChaosReport, SimRunError> {
    let web = Arc::new(webdis_web::generate(&plan.web_config()));
    let spec = plan.workload_spec();
    let schedule = plan.mutation_schedule();

    let mut baselines = Vec::with_capacity(schedule.events.len() + 1);
    baselines.push(run_workload_sim(
        web.clone(),
        &spec,
        plan.engine_config(TraceHandle::noop()),
        plan.sim_config(false),
    )?);
    if !schedule.events.is_empty() {
        let twin = LiveWeb::from_hosted(&web);
        for m in &schedule.events {
            twin.apply(m);
            baselines.push(run_workload_sim(
                Arc::new(twin.snapshot()),
                &spec,
                plan.engine_config(TraceHandle::noop()),
                plan.sim_config(false),
            )?);
        }
    }

    let (collector, tracer) = TraceHandle::collecting(1 << 17);
    let faulty = if schedule.events.is_empty() {
        run_workload_sim(
            web,
            &spec,
            plan.engine_config(tracer),
            plan.sim_config(true),
        )?
    } else {
        run_workload_sim_live(
            Arc::new(LiveWeb::from_hosted(&web)),
            &schedule,
            &spec,
            plan.engine_config(tracer),
            plan.sim_config(true),
        )?
    };
    let records = collector.snapshot();

    let violations = oracle::check(plan, &baselines, &faulty, &records);
    Ok(ChaosReport {
        violations,
        faulty,
        baselines,
        records,
    })
}

/// FNV-1a over the verdict lines: the sweep digest two runs of the
/// same master seed must agree on, byte for byte.
pub fn verdict_digest(lines: &[String]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The query the TCP smoke runs (the paper's campus example).
const TCP_QUERY: &str = webdis_web::figures::CAMPUS_QUERY;

/// The campus site whose daemon the TCP smoke crashes.
const TCP_CRASH_HOST: &str = "dsl.serc.iisc.ernet.in";

/// Pushes the chaos fault surface through real sockets: one campus
/// query under frame corruption, report duplication, and a daemon
/// crash-restart window, oracle-checked against a fault-free TCP
/// baseline. Returns the violations (empty = invariants held).
pub fn run_tcp_smoke() -> Result<Vec<Violation>, SimRunError> {
    let web = Arc::new(webdis_web::figures::campus());
    let engine = |tracer: TraceHandle| EngineConfig {
        expiry: Some(ExpiryPolicy::with_timeout(500_000)),
        tracer,
        ..EngineConfig::default()
    };
    let deadline = Duration::from_secs(10);

    let baseline = run_query_tcp_faulty(
        web.clone(),
        TCP_QUERY,
        engine(TraceHandle::noop()),
        deadline,
        TcpFaultPlan::default(),
    )?;

    let faults = TcpFaultPlan::default()
        .with_query_corruption(1, 1)
        .with_report_dups(0, usize::MAX / 2)
        .with_crash_window(
            TCP_CRASH_HOST,
            Duration::from_millis(0),
            Duration::from_millis(250),
        );
    let (collector, tracer) = TraceHandle::collecting(1 << 15);
    let outcome = run_query_tcp_faulty(web, TCP_QUERY, engine(tracer), deadline, faults)?;
    let records = collector.snapshot();

    let mut violations = Vec::new();
    if !baseline.complete {
        violations.push(Violation::BaselineHang {
            user: 0,
            query_num: 1,
        });
    }
    if !outcome.complete {
        violations.push(Violation::Hang {
            user: 0,
            query_num: 1,
            why: outcome
                .why_incomplete
                .clone()
                .unwrap_or_else(|| "no diagnosis".to_string()),
        });
    }
    // Row safety: set inclusion (the crash window makes recomputation
    // legitimate, exactly as in the simulated oracle).
    let base_rows = tcp_row_set(&baseline);
    for key in tcp_row_set(&outcome) {
        if !base_rows.contains(&key) {
            violations.push(Violation::RowExcess {
                user: 0,
                query_num: 1,
                detail: format!("row {key:?} never produced by the fault-free run"),
            });
        }
    }
    for anomaly in doctor::diagnose(&records).anomalies {
        violations.push(Violation::TraceAnomaly { detail: anomaly });
    }
    Ok(violations)
}

fn tcp_row_set(
    outcome: &webdis_core::TcpOutcome,
) -> std::collections::BTreeSet<(u32, String, Vec<String>)> {
    let mut out = std::collections::BTreeSet::new();
    for (stage, rows) in &outcome.results {
        for (node, row) in rows {
            out.insert((
                *stage,
                node.to_string(),
                row.values.iter().map(|v| v.render()).collect(),
            ));
        }
    }
    out
}
