//! `chaos-repro.json`: the replayable encoding of a failing plan.
//!
//! One JSON object holding the plan's seeds and knobs plus a `faults`
//! array of flat objects — everything integers and strings, so the
//! file is diff-friendly and replays bit-identically. Hand-written
//! writer and parser in the same spirit as `webdis-trace`'s JSONL
//! codec: the parser accepts exactly what the writer produces (flat
//! values plus one array of flat objects), not general JSON.

use std::collections::BTreeMap;

use crate::plan::{ChaosPlan, FaultSpec};

/// Format version stamped into every file.
pub const REPRO_VERSION: u64 = 1;

fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn field_u64(out: &mut String, key: &str, value: u64) {
    esc(out, key);
    out.push(':');
    out.push_str(&value.to_string());
    out.push(',');
}

fn field_str(out: &mut String, key: &str, value: &str) {
    esc(out, key);
    out.push(':');
    esc(out, value);
    out.push(',');
}

/// Encodes a failing plan (and the violation kind it reproduces, when
/// known) as a `chaos-repro.json` document.
pub fn encode(plan: &ChaosPlan, violation: Option<&str>) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    field_u64(&mut out, "version", REPRO_VERSION);
    if let Some(kind) = violation {
        field_str(&mut out, "violation", kind);
    }
    field_u64(&mut out, "sites", plan.sites as u64);
    field_u64(&mut out, "docs_per_site", plan.docs_per_site as u64);
    field_u64(&mut out, "web_seed", plan.web_seed);
    field_u64(&mut out, "users", plan.users as u64);
    field_u64(&mut out, "queries_per_user", plan.queries_per_user as u64);
    field_u64(&mut out, "interarrival_us", plan.interarrival_us);
    field_u64(&mut out, "workload_seed", plan.workload_seed);
    field_u64(&mut out, "sim_seed", plan.sim_seed);
    field_u64(&mut out, "jitter_us", plan.jitter_us);
    field_u64(&mut out, "horizon_us", plan.horizon_us);
    if let Some(expiry) = plan.expiry_us {
        field_u64(&mut out, "expiry_us", expiry);
    }
    if let Some(budget) = plan.cache_budget_bytes {
        field_u64(&mut out, "cache_budget_bytes", budget);
    }
    // Living-web knobs, written only off their defaults so pre-living
    // repro files stay byte-identical under re-encode.
    if plan.doc_cache_size != 0 {
        field_u64(&mut out, "doc_cache_size", plan.doc_cache_size as u64);
    }
    if !plan.validate_doc_cache {
        field_u64(&mut out, "validate_doc_cache", 0);
    }
    esc(&mut out, "faults");
    out.push_str(":[");
    for (i, fault) in plan.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        field_str(&mut out, "kind", fault.kind());
        match fault {
            FaultSpec::Drop { from, to, rate_ppm }
            | FaultSpec::Dup { from, to, rate_ppm }
            | FaultSpec::Corrupt { from, to, rate_ppm } => {
                field_str(&mut out, "from", from);
                field_str(&mut out, "to", to);
                field_u64(&mut out, "rate_ppm", u64::from(*rate_ppm));
            }
            FaultSpec::Partition {
                start_us,
                end_us,
                side_a,
                side_b,
            } => {
                field_u64(&mut out, "start_us", *start_us);
                field_u64(&mut out, "end_us", *end_us);
                field_str(&mut out, "side_a", &side_a.join(";"));
                field_str(&mut out, "side_b", &side_b.join(";"));
            }
            FaultSpec::CrashRestart {
                host,
                port,
                at_us,
                down_us,
            } => {
                field_str(&mut out, "host", host);
                field_u64(&mut out, "port", u64::from(*port));
                field_u64(&mut out, "at_us", *at_us);
                field_u64(&mut out, "down_us", *down_us);
            }
            FaultSpec::Mutation { at_us, op, url, arg } => {
                field_u64(&mut out, "at_us", *at_us);
                field_str(&mut out, "op", op);
                field_str(&mut out, "url", url);
                field_str(&mut out, "arg", arg);
            }
        }
        // Drop the trailing comma inside the fault object.
        out.pop();
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// One parsed scalar.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    U64(u64),
    Faults(Vec<BTreeMap<String, Value>>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(c), self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected digits at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }

    /// A flat object: string keys, string/u64 values only.
    fn parse_flat_object(&mut self) -> Result<BTreeMap<String, Value>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = match self.peek() {
                Some(b'"') => Value::Str(self.parse_string()?),
                _ => Value::U64(self.parse_u64()?),
            };
            map.insert(key, value);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    /// The top-level object: flat values plus the `faults` array.
    fn parse_document(&mut self) -> Result<BTreeMap<String, Value>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = match self.peek() {
                Some(b'"') => Value::Str(self.parse_string()?),
                Some(b'[') => {
                    self.pos += 1;
                    let mut faults = Vec::new();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                    } else {
                        loop {
                            faults.push(self.parse_flat_object()?);
                            match self.peek() {
                                Some(b',') => {
                                    self.pos += 1;
                                }
                                Some(b']') => {
                                    self.pos += 1;
                                    break;
                                }
                                other => return Err(format!("expected ',' or ']', got {other:?}")),
                            }
                        }
                    }
                    Value::Faults(faults)
                }
                _ => Value::U64(self.parse_u64()?),
            };
            map.insert(key, value);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

fn get_u64(map: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    match map.get(key) {
        Some(Value::U64(v)) => Ok(*v),
        Some(_) => Err(format!("field {key:?} is not an integer")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_str(map: &BTreeMap<String, Value>, key: &str) -> Result<String, String> {
    match map.get(key) {
        Some(Value::Str(v)) => Ok(v.clone()),
        Some(_) => Err(format!("field {key:?} is not a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_usize(map: &BTreeMap<String, Value>, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(map, key)?).map_err(|_| format!("field {key:?} out of range"))
}

fn sides(joined: &str) -> Vec<String> {
    joined
        .split(';')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Decodes a `chaos-repro.json` document back into the plan and the
/// recorded violation kind (if one was stamped).
pub fn decode(text: &str) -> Result<(ChaosPlan, Option<String>), String> {
    let mut parser = Parser {
        bytes: text.trim().as_bytes(),
        pos: 0,
    };
    let map = parser.parse_document()?;
    let version = get_u64(&map, "version")?;
    if version != REPRO_VERSION {
        return Err(format!("unsupported repro version {version}"));
    }
    let mut faults = Vec::new();
    match map.get("faults") {
        Some(Value::Faults(list)) => {
            for f in list {
                let kind = get_str(f, "kind")?;
                faults.push(match kind.as_str() {
                    "drop" => FaultSpec::Drop {
                        from: get_str(f, "from")?,
                        to: get_str(f, "to")?,
                        rate_ppm: get_u64(f, "rate_ppm")? as u32,
                    },
                    "dup" => FaultSpec::Dup {
                        from: get_str(f, "from")?,
                        to: get_str(f, "to")?,
                        rate_ppm: get_u64(f, "rate_ppm")? as u32,
                    },
                    "corrupt" => FaultSpec::Corrupt {
                        from: get_str(f, "from")?,
                        to: get_str(f, "to")?,
                        rate_ppm: get_u64(f, "rate_ppm")? as u32,
                    },
                    "partition" => FaultSpec::Partition {
                        start_us: get_u64(f, "start_us")?,
                        end_us: get_u64(f, "end_us")?,
                        side_a: sides(&get_str(f, "side_a")?),
                        side_b: sides(&get_str(f, "side_b")?),
                    },
                    "crash_restart" => FaultSpec::CrashRestart {
                        host: get_str(f, "host")?,
                        port: u16::try_from(get_u64(f, "port")?)
                            .map_err(|_| "port out of range".to_string())?,
                        at_us: get_u64(f, "at_us")?,
                        down_us: get_u64(f, "down_us")?,
                    },
                    "mutation" => FaultSpec::Mutation {
                        at_us: get_u64(f, "at_us")?,
                        op: get_str(f, "op")?,
                        url: get_str(f, "url")?,
                        arg: get_str(f, "arg")?,
                    },
                    other => return Err(format!("unknown fault kind {other:?}")),
                });
            }
        }
        Some(_) => return Err("field \"faults\" is not an array".to_string()),
        None => return Err("missing field \"faults\"".to_string()),
    }
    let plan = ChaosPlan {
        sites: get_usize(&map, "sites")?,
        docs_per_site: get_usize(&map, "docs_per_site")?,
        web_seed: get_u64(&map, "web_seed")?,
        users: get_usize(&map, "users")?,
        queries_per_user: get_usize(&map, "queries_per_user")?,
        interarrival_us: get_u64(&map, "interarrival_us")?,
        workload_seed: get_u64(&map, "workload_seed")?,
        sim_seed: get_u64(&map, "sim_seed")?,
        jitter_us: get_u64(&map, "jitter_us")?,
        horizon_us: get_u64(&map, "horizon_us")?,
        expiry_us: match map.get("expiry_us") {
            Some(Value::U64(v)) => Some(*v),
            Some(_) => return Err("field \"expiry_us\" is not an integer".to_string()),
            None => None,
        },
        cache_budget_bytes: match map.get("cache_budget_bytes") {
            Some(Value::U64(v)) => Some(*v),
            Some(_) => return Err("field \"cache_budget_bytes\" is not an integer".to_string()),
            None => None,
        },
        doc_cache_size: match map.get("doc_cache_size") {
            Some(Value::U64(v)) => usize::try_from(*v)
                .map_err(|_| "field \"doc_cache_size\" out of range".to_string())?,
            Some(_) => return Err("field \"doc_cache_size\" is not an integer".to_string()),
            None => 0,
        },
        validate_doc_cache: match map.get("validate_doc_cache") {
            Some(Value::U64(v)) => *v != 0,
            Some(_) => return Err("field \"validate_doc_cache\" is not an integer".to_string()),
            None => true,
        },
        faults,
    };
    let violation = match map.get("violation") {
        Some(Value::Str(v)) => Some(v.clone()),
        _ => None,
    };
    Ok((plan, violation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::FaultScheduleGen;
    use crate::plan::ANY_HOST;

    #[test]
    fn round_trips_every_fault_kind() {
        let plan = ChaosPlan {
            expiry_us: Some(123_456),
            faults: vec![
                FaultSpec::Drop {
                    from: ANY_HOST.into(),
                    to: ANY_HOST.into(),
                    rate_ppm: 100_000,
                },
                FaultSpec::Dup {
                    from: "user0.load.test".into(),
                    to: "wdqs.site1.test".into(),
                    rate_ppm: 1_000_000,
                },
                FaultSpec::Corrupt {
                    from: ANY_HOST.into(),
                    to: ANY_HOST.into(),
                    rate_ppm: 5,
                },
                FaultSpec::Partition {
                    start_us: 10,
                    end_us: 20,
                    side_a: vec!["wdqs.site0.test".into()],
                    side_b: vec!["wdqs.site1.test".into(), "wdqs.site2.test".into()],
                },
                FaultSpec::CrashRestart {
                    host: "wdqs.site2.test".into(),
                    port: 80,
                    at_us: 1_000,
                    down_us: 2_000,
                },
            ],
            ..ChaosPlan::default()
        };
        let text = encode(&plan, Some("hang"));
        let (back, violation) = decode(&text).expect("round trip");
        assert_eq!(back, plan);
        assert_eq!(violation.as_deref(), Some("hang"));
    }

    #[test]
    fn expiry_none_round_trips_as_absent_field() {
        let plan = ChaosPlan {
            expiry_us: None,
            ..ChaosPlan::default()
        };
        let text = encode(&plan, None);
        assert!(!text.contains("expiry_us"));
        let (back, violation) = decode(&text).expect("round trip");
        assert_eq!(back.expiry_us, None);
        assert_eq!(violation, None);
    }

    #[test]
    fn generated_plans_round_trip() {
        let g = FaultScheduleGen::new(99);
        for i in 0..25 {
            let plan = g.plan(i);
            let (back, _) = decode(&encode(&plan, None)).expect("round trip");
            assert_eq!(back, plan, "plan {i}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(decode("").is_err());
        assert!(decode("{}").is_err());
        assert!(decode("{\"version\":99,\"faults\":[]}").is_err());
        assert!(decode("{\"version\":1,\"faults\":[{\"kind\":\"nope\"}]}").is_err());
    }
}
