//! The invariant oracle: what must hold of *every* run, no matter
//! which faults were injected.
//!
//! Four families of invariants, checked against the faulty run, its
//! fault-free twin (same topology, workload, environment — faults
//! stripped), and the faulty run's trace:
//!
//! 1. **Liveness** — every query reaches a terminal disposition
//!    (completion, possibly with failed/shed nodes listed). Nothing
//!    hangs, nothing stays unsubmitted.
//! 2. **Row safety** — the faulty run's rows are a sub-multiset of the
//!    baseline's: faults may *lose* results (expiry writes nodes off)
//!    but never invent or duplicate them. When the schedule contains a
//!    crash-restart, a revisited server legitimately *recomputes* rows
//!    it already reported (its log table restarted empty), so the
//!    check relaxes to set inclusion — still: no invented rows.
//! 3. **Trace coherence** — the doctor's triage over the trajectory
//!    finds no anomalies: every lost clone is explained by an injected
//!    drop/corruption/dead-letter record, no orphans, no silent hangs.
//! 4. **CHT convergence** — a query that reports complete has a
//!    converged home-site CHT: every entry deleted, no tombstone
//!    outstanding, zero live entries.

use std::collections::BTreeMap;

use webdis_bench::doctor;
use webdis_load::{QueryRecord, WorkloadOutcome};
use webdis_trace::{TraceEvent, TraceRecord};
use webdis_web::LiveWeb;

use crate::plan::ChaosPlan;

/// One invariant violation. `kind()` is the stable label the shrinker
/// and the repro file compare on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The *fault-free* twin failed to complete — the plan (or the
    /// engine) is broken before any fault is injected.
    BaselineHang {
        /// Submitting user.
        user: usize,
        /// Query number within that user.
        query_num: u64,
    },
    /// A query never reached a terminal disposition.
    Hang {
        /// Submitting user.
        user: usize,
        /// Query number within that user.
        query_num: u64,
        /// The driver's diagnosis, when it has one.
        why: String,
    },
    /// Planned submissions never went out before the horizon.
    Unsubmitted {
        /// How many submissions were still pending.
        count: usize,
    },
    /// The faulty run produced rows the baseline never did (or more
    /// copies than permitted).
    RowExcess {
        /// Submitting user.
        user: usize,
        /// Query number within that user.
        query_num: u64,
        /// What was in excess.
        detail: String,
    },
    /// The doctor's trajectory triage found an anomaly (orphaned send,
    /// unexplained loss, missing termination).
    TraceAnomaly {
        /// The doctor's anomaly line.
        detail: String,
    },
    /// A query reported complete with an unconverged home-site CHT.
    ChtDiverged {
        /// Submitting user.
        user: usize,
        /// Query number within that user.
        query_num: u64,
        /// Live entries / counter snapshot.
        detail: String,
    },
    /// A site visit answered from content older than the document's
    /// version at visit time — the staleness contract broke (a cached
    /// build outlived the page it was parsed from).
    StaleVisit {
        /// The visiting server's host.
        site: String,
        /// The document served stale.
        url: String,
        /// Visit time, virtual µs.
        time_us: u64,
        /// Content version the visit answered from.
        saw_version: u64,
        /// Version the document had held since strictly before the
        /// visit.
        expected_version: u64,
    },
}

impl Violation {
    /// Stable kind label (shrink target, repro tag, verdict lines).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::BaselineHang { .. } => "baseline_hang",
            Violation::Hang { .. } => "hang",
            Violation::Unsubmitted { .. } => "unsubmitted",
            Violation::RowExcess { .. } => "row_excess",
            Violation::TraceAnomaly { .. } => "trace_anomaly",
            Violation::ChtDiverged { .. } => "cht_diverged",
            Violation::StaleVisit { .. } => "stale_visit",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::BaselineHang { user, query_num } => {
                write!(f, "baseline_hang: user{user}#{query_num} (fault-free run!)")
            }
            Violation::Hang {
                user,
                query_num,
                why,
            } => write!(f, "hang: user{user}#{query_num} — {why}"),
            Violation::Unsubmitted { count } => {
                write!(f, "unsubmitted: {count} submission(s) never went out")
            }
            Violation::RowExcess {
                user,
                query_num,
                detail,
            } => write!(f, "row_excess: user{user}#{query_num} — {detail}"),
            Violation::TraceAnomaly { detail } => write!(f, "trace_anomaly: {detail}"),
            Violation::ChtDiverged {
                user,
                query_num,
                detail,
            } => write!(f, "cht_diverged: user{user}#{query_num} — {detail}"),
            Violation::StaleVisit {
                site,
                url,
                time_us,
                saw_version,
                expected_version,
            } => write!(
                f,
                "stale_visit: {site} served {url} at t={time_us}µs from \
                 version {saw_version}, current since before the visit: \
                 {expected_version}"
            ),
        }
    }
}

/// One result row's identity: `(stage, node, rendered values)`.
type RowKey = (u32, String, Vec<String>);

/// A query's rows as a multiset keyed by [`RowKey`].
fn row_multiset(rec: &QueryRecord) -> BTreeMap<RowKey, usize> {
    let mut out: BTreeMap<RowKey, usize> = BTreeMap::new();
    for (stage, rows) in &rec.results {
        for (node, row) in rows {
            *out.entry((
                *stage,
                node.to_string(),
                row.values.iter().map(|v| v.render()).collect(),
            ))
            .or_default() += 1;
        }
    }
    out
}

/// Checks every invariant; returns the violations found (empty = the
/// run upheld the oracle).
///
/// `baselines` holds the fault-free twins: one for a frozen plan, and
/// one *per web content version* (pristine web first, then the web
/// after each mutation, every run fault-free and mutation-free) for a
/// living plan — the union of their rows is the benign envelope, since
/// any visit legally answers from whichever version was current when
/// the clone arrived.
pub fn check(
    plan: &ChaosPlan,
    baselines: &[WorkloadOutcome],
    faulty: &WorkloadOutcome,
    records: &[TraceRecord],
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // 0. Every fault-free twin must be healthy, or nothing below means
    // anything.
    for baseline in baselines {
        for rec in &baseline.records {
            if !rec.complete {
                violations.push(Violation::BaselineHang {
                    user: rec.user,
                    query_num: rec.query_num,
                });
            }
        }
    }

    // 1. Liveness.
    for rec in &faulty.records {
        if !rec.complete {
            violations.push(Violation::Hang {
                user: rec.user,
                query_num: rec.query_num,
                why: rec
                    .why_incomplete
                    .clone()
                    .unwrap_or_else(|| "no diagnosis".to_string()),
            });
        }
    }
    if faulty.unsubmitted > 0 {
        violations.push(Violation::Unsubmitted {
            count: faulty.unsubmitted,
        });
    }

    // 2. Row safety against the fault-free twins: the union of the
    // per-version baselines' rows (taking the max per-row count) is the
    // benign envelope. A mutated web relaxes to set inclusion, exactly
    // like a crash-restart: a visit straddling a version boundary
    // legitimately recomputes what an earlier version already reported.
    let mut baseline_rows: BTreeMap<(usize, u64), BTreeMap<RowKey, usize>> = BTreeMap::new();
    for baseline in baselines {
        for r in &baseline.records {
            let entry = baseline_rows.entry((r.user, r.query_num)).or_default();
            for (key, count) in row_multiset(r) {
                let slot = entry.entry(key).or_default();
                *slot = (*slot).max(count);
            }
        }
    }
    let relaxed = plan.has_restarts() || plan.has_mutations();
    for rec in &faulty.records {
        let Some(base) = baseline_rows.get(&(rec.user, rec.query_num)) else {
            continue;
        };
        for (key, count) in row_multiset(rec) {
            match base.get(&key) {
                None => violations.push(Violation::RowExcess {
                    user: rec.user,
                    query_num: rec.query_num,
                    detail: format!("row {key:?} never produced by any fault-free run"),
                }),
                Some(base_count) if !relaxed && count > *base_count => {
                    violations.push(Violation::RowExcess {
                        user: rec.user,
                        query_num: rec.query_num,
                        detail: format!(
                            "row {key:?} delivered {count}x vs {base_count}x fault-free \
                             (no restart in the schedule to explain recomputation)"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }

    // 3. Trace coherence via the doctor's triage.
    for anomaly in doctor::diagnose(records).anomalies {
        violations.push(Violation::TraceAnomaly { detail: anomaly });
    }

    // 5. The staleness contract: every visit answers from the content
    // version current at visit time. The trace's per-visit `DocFetch`
    // version stamps are checked against a replay of the mutation
    // schedule on a twin living web. A fetch at *exactly* a mutation's
    // instant may land on either side of it (delivery order at equal
    // virtual times is the simulator's business), so the expected
    // version is the one current since strictly before the visit.
    violations.extend(check_stale_visits(plan, records));

    // 4. CHT convergence at the home site.
    for rec in &faulty.records {
        if rec.complete && (!rec.cht_converged || rec.cht_live > 0) {
            violations.push(Violation::ChtDiverged {
                user: rec.user,
                query_num: rec.query_num,
                detail: format!(
                    "complete with {} live entr(ies); stats: {:?}",
                    rec.cht_live, rec.cht_stats
                ),
            });
        }
    }

    violations
}

/// Replays the plan's mutation schedule on a twin [`LiveWeb`] to build
/// each document's version timeline, then holds every traced `DocFetch`
/// to it: the served version must be at least the version the document
/// had held since strictly before the visit.
fn check_stale_visits(plan: &ChaosPlan, records: &[TraceRecord]) -> Vec<Violation> {
    let schedule = plan.mutation_schedule();
    if schedule.events.is_empty() {
        return Vec::new();
    }
    // url -> [(instant, version the doc carries from then on)].
    let mut timeline: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    let twin = LiveWeb::from_hosted(&webdis_web::generate(&plan.web_config()));
    for m in &schedule.events {
        let applied = twin.apply(m);
        for (url, _) in &applied.effects {
            timeline
                .entry(url.to_string())
                .or_default()
                .push((m.at_us, applied.site_version));
        }
    }
    let mut violations = Vec::new();
    for rec in records {
        let TraceEvent::DocFetch {
            url,
            content_version,
            ..
        } = &rec.event
        else {
            continue;
        };
        let Some(changes) = timeline.get(url) else {
            continue;
        };
        let expected = changes
            .iter()
            .take_while(|(at, _)| *at < rec.time_us)
            .last()
            .map(|(_, v)| *v)
            .unwrap_or(0);
        if *content_version < expected {
            violations.push(Violation::StaleVisit {
                site: rec.site.clone(),
                url: url.clone(),
                time_us: rec.time_us,
                saw_version: *content_version,
                expected_version: expected,
            });
        }
    }
    violations
}
