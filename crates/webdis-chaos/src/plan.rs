//! The chaos plan: one self-contained, replayable experiment.
//!
//! A [`ChaosPlan`] pins everything a run needs — the generated web, the
//! workload, the engine knobs, and a list of [`FaultSpec`]s — as plain
//! seeds and integers, so the same plan always produces the same run
//! and a failing plan can be written to disk and replayed elsewhere.
//! Probabilities are stored as parts-per-million so plans compare,
//! hash, and serialize exactly (no floats anywhere).

use webdis_core::{EngineConfig, ExpiryPolicy};
use webdis_load::{ArrivalProcess, QueryMix, WorkloadSpec};
use webdis_model::{SiteAddr, Url};
use webdis_sim::{CrashRestart, LinkDrop, LinkFault, Partition, SimConfig};
use webdis_trace::TraceHandle;
use webdis_web::{Mutation, MutationOp, MutationSchedule, WebGenConfig};

/// Wildcard host in a rate fault: the rate applies uniformly to every
/// link instead of one `(from, to)` pair.
pub const ANY_HOST: &str = "*";

/// One injected fault. Rate faults (`Drop`/`Dup`/`Corrupt`) carry their
/// probability in parts-per-million; `from`/`to` of [`ANY_HOST`] make
/// the rate uniform across all links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Messages on the link vanish silently.
    Drop {
        /// Sender endpoint host, or [`ANY_HOST`].
        from: String,
        /// Receiver endpoint host, or [`ANY_HOST`].
        to: String,
        /// Drop probability, parts per million.
        rate_ppm: u32,
    },
    /// Messages on the link are delivered twice.
    Dup {
        /// Sender endpoint host, or [`ANY_HOST`].
        from: String,
        /// Receiver endpoint host, or [`ANY_HOST`].
        to: String,
        /// Duplication probability, parts per million.
        rate_ppm: u32,
    },
    /// Message bytes are corrupted in flight; the receiver cannot
    /// decode the frame, so the message is lost through the decode
    /// path.
    Corrupt {
        /// Sender endpoint host, or [`ANY_HOST`].
        from: String,
        /// Receiver endpoint host, or [`ANY_HOST`].
        to: String,
        /// Corruption probability, parts per million.
        rate_ppm: u32,
    },
    /// A partition window severing traffic between two host groups.
    Partition {
        /// Partition onset, virtual µs.
        start_us: u64,
        /// Partition healing time, virtual µs (exclusive).
        end_us: u64,
        /// Hosts on one side of the cut.
        side_a: Vec<String>,
        /// Hosts on the other side.
        side_b: Vec<String>,
    },
    /// A crash-restart window: the endpoint deregisters at `at_us` and
    /// comes back `down_us` later with fresh volatile state (empty log
    /// table).
    CrashRestart {
        /// The crashing endpoint's host (e.g. `wdqs.site2.test`).
        host: String,
        /// The crashing endpoint's port.
        port: u16,
        /// Crash onset, virtual µs.
        at_us: u64,
        /// How long the endpoint stays down.
        down_us: u64,
    },
    /// The living-web fault axis: the web itself changes mid-run. Unlike
    /// the network faults above this is *benign by contract* — the
    /// engine must answer each visit from the content current at visit
    /// time and terminate gracefully at dead links; the oracle's job is
    /// to tell "the web changed" apart from "the engine lost rows".
    /// Encoded as flat strings so plans stay diffable; see
    /// [`ChaosPlan::mutation_schedule`] for the `op`/`arg` vocabulary.
    Mutation {
        /// Virtual instant at which the change lands.
        at_us: u64,
        /// Operation label (`edit_page`, `create_page`, `delete_page`,
        /// `add_anchor`, `remove_anchor`, `site_leave`, `site_join`).
        op: String,
        /// The page (or site root, for site-level ops) the change hits.
        url: String,
        /// Op-dependent payload: edit token, created-page title, or the
        /// added anchor's target URL. Empty when the op takes none.
        arg: String,
    },
}

impl FaultSpec {
    /// Stable fault-kind label (used in the repro encoding and verdict
    /// lines).
    pub fn kind(&self) -> &'static str {
        match self {
            FaultSpec::Drop { .. } => "drop",
            FaultSpec::Dup { .. } => "dup",
            FaultSpec::Corrupt { .. } => "corrupt",
            FaultSpec::Partition { .. } => "partition",
            FaultSpec::CrashRestart { .. } => "crash_restart",
            FaultSpec::Mutation { .. } => "mutation",
        }
    }
}

/// The DISQL templates every chaos workload mixes (over the generated
/// web, whose first document is always `http://site0.test/doc0.html`).
pub const CHAOS_GLOBAL_QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

/// Local-traversal companion to [`CHAOS_GLOBAL_QUERY`].
pub const CHAOS_LOCAL_QUERY: &str = r#"
    select d.url, d.title
    from document d such that "http://site0.test/doc0.html" L* d
"#;

/// One replayable chaos experiment: topology, workload, engine knobs,
/// and the fault schedule, all as seeds and integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Sites in the generated web.
    pub sites: usize,
    /// Documents per site.
    pub docs_per_site: usize,
    /// Seed for the web generator.
    pub web_seed: u64,
    /// Concurrent user sites.
    pub users: usize,
    /// Submissions per user.
    pub queries_per_user: usize,
    /// Mean interarrival gap between one user's submissions, µs.
    pub interarrival_us: u64,
    /// Seed for the workload plan.
    pub workload_seed: u64,
    /// Seed for the simulator's jitter/fault draws.
    pub sim_seed: u64,
    /// Delivery jitter bound, µs (0 = none; jitter is environment, not
    /// a fault — the baseline run keeps it).
    pub jitter_us: u64,
    /// Virtual-time cap for the run.
    pub horizon_us: u64,
    /// Section 7.1 stale-entry expiry timeout; `None` disables expiry
    /// (only sensible in hand-built plans that *want* to demonstrate a
    /// hang).
    pub expiry_us: Option<u64>,
    /// Answer-cache byte budget; `None` runs cache-free (today's
    /// default). Crash-restart windows against a cached engine
    /// exercise cold-cache recovery: the restarted site recomputes
    /// answers its cache lost, which the row oracle must not confuse
    /// with invented rows.
    pub cache_budget_bytes: Option<u64>,
    /// Footnote-3 document-cache capacity (parsed `NodeDb`s per site).
    /// 0 — the engine default — runs cache-free; living-web plans set it
    /// so mutations exercise the cache's staleness guard.
    pub doc_cache_size: usize,
    /// The doc cache's per-hit content-version check. `true` is the
    /// consistency contract; `false` reproduces the historical
    /// serve-whatever-is-cached bug, turning a mutation of a visited
    /// page into a `stale_visit` oracle violation — the known-bad
    /// schedule the shrinker demonstrates on.
    pub validate_doc_cache: bool,
    /// The fault schedule. An empty list is a fault-free plan.
    pub faults: Vec<FaultSpec>,
}

impl Default for ChaosPlan {
    fn default() -> ChaosPlan {
        ChaosPlan {
            sites: 4,
            docs_per_site: 2,
            web_seed: 1,
            users: 1,
            queries_per_user: 2,
            interarrival_us: 50_000,
            workload_seed: 1,
            sim_seed: 1,
            jitter_us: 0,
            horizon_us: 60_000_000,
            expiry_us: Some(400_000),
            cache_budget_bytes: None,
            doc_cache_size: 0,
            validate_doc_cache: true,
            faults: Vec::new(),
        }
    }
}

impl ChaosPlan {
    /// The generated-web configuration this plan runs against.
    pub fn web_config(&self) -> WebGenConfig {
        WebGenConfig {
            sites: self.sites,
            docs_per_site: self.docs_per_site,
            extra_local_links: 1,
            extra_global_links: 1,
            title_needle_prob: 0.4,
            seed: self.web_seed,
            ..WebGenConfig::default()
        }
    }

    /// The workload specification this plan submits.
    pub fn workload_spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            users: self.users,
            queries_per_user: self.queries_per_user,
            arrival: ArrivalProcess::Poisson {
                mean_interarrival_us: self.interarrival_us,
            },
            mix: QueryMix::single(CHAOS_GLOBAL_QUERY).with(CHAOS_LOCAL_QUERY, 1),
            seed: self.workload_seed,
            horizon_us: self.horizon_us,
        }
    }

    /// The engine configuration: defaults plus this plan's expiry,
    /// answer-cache budget, and the caller's tracer.
    pub fn engine_config(&self, tracer: TraceHandle) -> EngineConfig {
        EngineConfig {
            expiry: self.expiry_us.map(ExpiryPolicy::with_timeout),
            cache: self
                .cache_budget_bytes
                .map(webdis_core::CachePolicy::with_budget),
            doc_cache_size: self.doc_cache_size,
            validate_doc_cache: self.validate_doc_cache,
            tracer,
            ..EngineConfig::default()
        }
    }

    /// The simulator configuration with the fault schedule applied.
    /// `with_faults == false` builds the fault-free baseline: same
    /// latency model, jitter, and seed — only the faults stripped.
    pub fn sim_config(&self, with_faults: bool) -> SimConfig {
        let mut cfg = SimConfig {
            jitter_us: self.jitter_us,
            seed: self.sim_seed,
            ..SimConfig::default()
        };
        if !with_faults {
            return cfg;
        }
        for fault in &self.faults {
            match fault {
                FaultSpec::Drop { from, to, rate_ppm } => {
                    let rate = ppm(*rate_ppm);
                    if from == ANY_HOST && to == ANY_HOST {
                        cfg.drop_rate = (cfg.drop_rate + rate).min(1.0);
                    } else {
                        cfg.link_drops.push(LinkDrop {
                            from_host: from.clone(),
                            to_host: to.clone(),
                            rate,
                        });
                    }
                }
                FaultSpec::Dup { from, to, rate_ppm } => {
                    let rate = ppm(*rate_ppm);
                    if from == ANY_HOST && to == ANY_HOST {
                        cfg.dup_rate = (cfg.dup_rate + rate).min(1.0);
                    } else {
                        cfg.link_dups.push(LinkFault {
                            from_host: from.clone(),
                            to_host: to.clone(),
                            rate,
                        });
                    }
                }
                FaultSpec::Corrupt { from, to, rate_ppm } => {
                    let rate = ppm(*rate_ppm);
                    if from == ANY_HOST && to == ANY_HOST {
                        cfg.corrupt_rate = (cfg.corrupt_rate + rate).min(1.0);
                    } else {
                        cfg.link_corrupts.push(LinkFault {
                            from_host: from.clone(),
                            to_host: to.clone(),
                            rate,
                        });
                    }
                }
                FaultSpec::Partition {
                    start_us,
                    end_us,
                    side_a,
                    side_b,
                } => cfg.partitions.push(Partition {
                    start_us: *start_us,
                    end_us: *end_us,
                    side_a: side_a.clone(),
                    side_b: side_b.clone(),
                }),
                FaultSpec::CrashRestart {
                    host,
                    port,
                    at_us,
                    down_us,
                } => cfg.restarts.push(CrashRestart {
                    site: SiteAddr {
                        host: host.clone(),
                        port: *port,
                    },
                    at_us: *at_us,
                    down_us: *down_us,
                }),
                // Mutations change the *web*, not the network — the
                // runner applies them via `mutation_schedule()`.
                FaultSpec::Mutation { .. } => {}
            }
        }
        cfg
    }

    /// True when the schedule contains a crash-restart window. A
    /// restarted server loses its log table, so a clone revisiting it
    /// is legitimately recomputed — the row oracle then checks set
    /// inclusion instead of multiset inclusion.
    pub fn has_restarts(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, FaultSpec::CrashRestart { .. }))
    }

    /// True when the schedule mutates the web mid-run: the runner then
    /// executes on a living web and the oracle checks rows against the
    /// union of per-version fault-free baselines.
    pub fn has_mutations(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, FaultSpec::Mutation { .. }))
    }

    /// The plan's [`FaultSpec::Mutation`] entries as a time-ordered
    /// [`MutationSchedule`] (ties keep schedule order). Panics on an op
    /// label outside the documented vocabulary or an unparsable URL —
    /// plans come from the generator or the repro decoder, both of which
    /// only produce the vocabulary below.
    pub fn mutation_schedule(&self) -> MutationSchedule {
        let mut events = Vec::new();
        for fault in &self.faults {
            let FaultSpec::Mutation { at_us, op, url, arg } = fault else {
                continue;
            };
            let parsed = Url::parse(url)
                .unwrap_or_else(|e| panic!("mutation url {url:?} does not parse: {e:?}"));
            let op = match op.as_str() {
                "edit_page" => MutationOp::EditPage {
                    url: parsed,
                    token: arg.clone(),
                },
                "create_page" => MutationOp::CreatePage {
                    url: parsed,
                    title: arg.clone(),
                },
                "delete_page" => MutationOp::DeletePage { url: parsed },
                "add_anchor" => MutationOp::AddAnchor {
                    url: parsed,
                    href: Url::parse(arg)
                        .unwrap_or_else(|e| panic!("anchor href {arg:?} does not parse: {e:?}")),
                    label: "chaos link".to_owned(),
                },
                "remove_anchor" => MutationOp::RemoveAnchor { url: parsed },
                "site_leave" => MutationOp::SiteLeave {
                    host: parsed.host().to_owned(),
                },
                "site_join" => MutationOp::SiteJoin {
                    host: parsed.host().to_owned(),
                },
                other => panic!("unknown mutation op {other:?}"),
            };
            events.push(Mutation { at_us: *at_us, op });
        }
        events.sort_by_key(|m| m.at_us);
        MutationSchedule { events }
    }

    /// The same plan with a different fault schedule (the shrinker's
    /// edit operation).
    pub fn with_faults(&self, faults: Vec<FaultSpec>) -> ChaosPlan {
        ChaosPlan {
            faults,
            ..self.clone()
        }
    }
}

/// Parts-per-million to probability.
fn ppm(rate_ppm: u32) -> f64 {
    f64::from(rate_ppm.min(1_000_000)) / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_strips_faults_but_keeps_environment() {
        let plan = ChaosPlan {
            jitter_us: 500,
            faults: vec![
                FaultSpec::Drop {
                    from: ANY_HOST.into(),
                    to: ANY_HOST.into(),
                    rate_ppm: 100_000,
                },
                FaultSpec::CrashRestart {
                    host: "wdqs.site1.test".into(),
                    port: 80,
                    at_us: 1_000,
                    down_us: 2_000,
                },
            ],
            ..ChaosPlan::default()
        };
        let base = plan.sim_config(false);
        assert_eq!(base.drop_rate, 0.0);
        assert!(base.restarts.is_empty());
        assert_eq!(base.jitter_us, 500);
        assert_eq!(base.seed, plan.sim_seed);
        let faulty = plan.sim_config(true);
        assert!(faulty.drop_rate > 0.0);
        assert_eq!(faulty.restarts.len(), 1);
    }

    #[test]
    fn link_rates_and_uniform_rates_route_separately() {
        let plan = ChaosPlan {
            faults: vec![
                FaultSpec::Corrupt {
                    from: "a".into(),
                    to: "b".into(),
                    rate_ppm: 1_000_000,
                },
                FaultSpec::Dup {
                    from: ANY_HOST.into(),
                    to: ANY_HOST.into(),
                    rate_ppm: 250_000,
                },
            ],
            ..ChaosPlan::default()
        };
        let cfg = plan.sim_config(true);
        assert_eq!(cfg.corrupt_rate, 0.0);
        assert_eq!(cfg.link_corrupts.len(), 1);
        assert_eq!(cfg.link_corrupts[0].rate, 1.0);
        assert_eq!(cfg.dup_rate, 0.25);
        assert!(cfg.link_dups.is_empty());
    }

    #[test]
    fn restart_detection_feeds_the_row_oracle_mode() {
        let mut plan = ChaosPlan::default();
        assert!(!plan.has_restarts());
        plan.faults.push(FaultSpec::CrashRestart {
            host: "wdqs.site0.test".into(),
            port: 80,
            at_us: 0,
            down_us: 1,
        });
        assert!(plan.has_restarts());
    }
}
