//! The fault-schedule generator: one master seed, arbitrarily many
//! mixed fault plans.
//!
//! `FaultScheduleGen` expands a master seed into an indexed stream of
//! [`ChaosPlan`]s. Every randomized choice — topology size, workload
//! shape, fault count, fault kinds, rates, windows — is drawn from a
//! per-index RNG forked off the master seed, so plan `i` of seed `s`
//! is the same plan forever, independent of how many plans were drawn
//! before it.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::plan::{ChaosPlan, FaultSpec, ANY_HOST};

/// Expands a master seed into an indexed stream of chaos plans.
#[derive(Debug, Clone, Copy)]
pub struct FaultScheduleGen {
    /// The master seed the whole sweep derives from.
    pub master_seed: u64,
}

/// The plain web host of generated site `i`.
fn site_host(i: usize) -> String {
    format!("site{i}.test")
}

/// The query-server endpoint host of generated site `i` (the daemon
/// registers at `wdqs.<host>`).
fn server_host(i: usize) -> String {
    format!("wdqs.{}", site_host(i))
}

/// The endpoint host of load user `i`.
fn user_host(i: usize) -> String {
    webdis_load::load_user_addr(i).host
}

impl FaultScheduleGen {
    /// A generator over `master_seed`.
    pub fn new(master_seed: u64) -> FaultScheduleGen {
        FaultScheduleGen { master_seed }
    }

    /// Expands plan `index`. Same `(master_seed, index)`, same plan.
    pub fn plan(&self, index: usize) -> ChaosPlan {
        // The same split-mix fold `WorkloadSpec::plan` uses for its
        // per-user streams: index n never perturbs index m.
        let seed = self
            .master_seed
            .wrapping_add((index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = StdRng::seed_from_u64(seed);

        let sites = rng.gen_range(3..=5);
        let users = rng.gen_range(1..=2);
        let mut plan = ChaosPlan {
            sites,
            docs_per_site: rng.gen_range(2..=3),
            web_seed: rng.next_u64(),
            users,
            queries_per_user: rng.gen_range(2..=3),
            interarrival_us: rng.gen_range(20_000..=80_000),
            workload_seed: rng.next_u64(),
            sim_seed: rng.next_u64(),
            jitter_us: rng.gen_range(0..=2_000),
            horizon_us: 60_000_000,
            expiry_us: Some(rng.gen_range(300_000..=600_000)),
            cache_budget_bytes: None,
            doc_cache_size: 0,
            validate_doc_cache: true,
            faults: Vec::new(),
        };

        let fault_count = rng.gen_range(2usize..=5);
        for _ in 0..fault_count {
            plan.faults.push(self.draw_fault(&mut rng, sites, users));
        }
        // The living-web axis rides along *after* the classic draws, so
        // a given (seed, index) keeps the exact network-fault prefix it
        // had before mutations existed. Mutated plans also turn the
        // footnote-3 doc cache on (guard enabled — these schedules
        // probe the engine, not demonstrate the historic bug), so every
        // sweep exercises the per-hit version validation.
        let mutation_count = rng.gen_range(0usize..=2);
        if mutation_count > 0 {
            plan.doc_cache_size = 8;
        }
        for i in 0..mutation_count {
            let fault = self.draw_mutation(&mut rng, sites, plan.docs_per_site, i);
            plan.faults.push(fault);
        }
        plan
    }

    /// Draws one fault over the plan's topology. All five kinds mix:
    /// uniform and per-link rate faults, partitions, and server
    /// crash-restart windows. Only query servers crash — a crashed
    /// *user* endpoint would orphan its own bookkeeping, which is a
    /// different experiment than engine robustness.
    fn draw_fault(&self, rng: &mut StdRng, sites: usize, users: usize) -> FaultSpec {
        // A random endpoint pair for link faults: any user or server
        // may sit on either end (self-links are harmless — the
        // simulator routes every message through the network).
        let endpoint = |rng: &mut StdRng| {
            let servers = sites;
            let pick = rng.gen_range(0..servers + users);
            if pick < servers {
                server_host(pick)
            } else {
                user_host(pick - servers)
            }
        };
        match rng.gen_range(0u32..8) {
            // Uniform rate faults (weighted toward the interesting
            // duplication/corruption surface).
            0 => FaultSpec::Drop {
                from: ANY_HOST.into(),
                to: ANY_HOST.into(),
                rate_ppm: rng.gen_range(10_000..=150_000),
            },
            1 => FaultSpec::Dup {
                from: ANY_HOST.into(),
                to: ANY_HOST.into(),
                rate_ppm: rng.gen_range(50_000..=400_000),
            },
            2 => FaultSpec::Corrupt {
                from: ANY_HOST.into(),
                to: ANY_HOST.into(),
                rate_ppm: rng.gen_range(10_000..=150_000),
            },
            // Per-link rate faults, up to total loss of one link.
            3 => FaultSpec::Drop {
                from: endpoint(rng),
                to: endpoint(rng),
                rate_ppm: rng.gen_range(100_000..=1_000_000),
            },
            4 => FaultSpec::Dup {
                from: endpoint(rng),
                to: endpoint(rng),
                rate_ppm: rng.gen_range(100_000..=1_000_000),
            },
            5 => FaultSpec::Corrupt {
                from: endpoint(rng),
                to: endpoint(rng),
                rate_ppm: rng.gen_range(100_000..=1_000_000),
            },
            // A partition separating a random prefix of the servers
            // from the rest of the cluster (users side with the
            // remainder, so submissions keep flowing).
            6 => {
                let cut = rng.gen_range(1..sites.max(2));
                let side_a: Vec<String> = (0..cut).map(server_host).collect();
                let side_b: Vec<String> = (cut..sites).map(server_host).collect();
                let start_us = rng.gen_range(0..=1_000_000);
                FaultSpec::Partition {
                    start_us,
                    end_us: start_us + rng.gen_range(100_000u64..=600_000),
                    side_a,
                    side_b,
                }
            }
            // A server crash-restart window.
            _ => FaultSpec::CrashRestart {
                host: server_host(rng.gen_range(0..sites)),
                port: 80,
                at_us: rng.gen_range(0..=2_000_000),
                down_us: rng.gen_range(100_000..=700_000),
            },
        }
    }

    /// Draws one living-web mutation over the generated document space.
    /// Edits dominate (they exercise the doc-cache validation path);
    /// deletes, creates, and anchor grafts mix in. `ordinal` keeps
    /// tokens and created URLs distinct within one plan.
    fn draw_mutation(
        &self,
        rng: &mut StdRng,
        sites: usize,
        docs_per_site: usize,
        ordinal: usize,
    ) -> FaultSpec {
        let site = rng.gen_range(0..sites);
        let doc = rng.gen_range(0..docs_per_site);
        let url = format!("http://{}/doc{doc}.html", site_host(site));
        let at_us = rng.gen_range(10_000u64..=1_000_000);
        match rng.gen_range(0u32..6) {
            0 | 1 | 2 => FaultSpec::Mutation {
                at_us,
                op: "edit_page".into(),
                url,
                arg: format!("chaos-token-{ordinal}"),
            },
            3 => FaultSpec::Mutation {
                at_us,
                op: "delete_page".into(),
                url,
                arg: String::new(),
            },
            4 => FaultSpec::Mutation {
                at_us,
                op: "create_page".into(),
                url: format!("http://{}/chaos{ordinal}.html", site_host(site)),
                arg: format!("Chaos Page {ordinal}"),
            },
            _ => FaultSpec::Mutation {
                at_us,
                op: "add_anchor".into(),
                url,
                arg: format!(
                    "http://{}/doc{}.html",
                    site_host(rng.gen_range(0..sites)),
                    rng.gen_range(0..docs_per_site)
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_index_give_identical_plans() {
        let g = FaultScheduleGen::new(0xC0FFEE);
        for i in 0..20 {
            assert_eq!(g.plan(i), g.plan(i), "plan {i} must be stable");
        }
    }

    #[test]
    fn different_indices_give_different_plans() {
        let g = FaultScheduleGen::new(7);
        let distinct = (0..10)
            .map(|i| format!("{:?}", g.plan(i)))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 8, "indexed plans must vary");
    }

    #[test]
    fn a_sweep_mixes_all_six_fault_kinds() {
        let g = FaultScheduleGen::new(0xFA57);
        let mut kinds = std::collections::BTreeSet::new();
        for i in 0..60 {
            for f in &g.plan(i).faults {
                kinds.insert(f.kind());
            }
        }
        for kind in [
            "drop",
            "dup",
            "corrupt",
            "partition",
            "crash_restart",
            "mutation",
        ] {
            assert!(kinds.contains(kind), "sweep never drew {kind}");
        }
    }

    #[test]
    fn mutated_plans_enable_the_doc_cache() {
        let g = FaultScheduleGen::new(0xFA57);
        let mut saw_mutated = false;
        for i in 0..60 {
            let plan = g.plan(i);
            if plan.has_mutations() {
                saw_mutated = true;
                assert_eq!(plan.doc_cache_size, 8, "mutated plan {i} runs cached");
                assert!(plan.validate_doc_cache, "guard must stay on in sweeps");
            }
        }
        assert!(saw_mutated, "sweep drew no mutated plan at all");
    }

    #[test]
    fn generated_plans_always_keep_expiry_on() {
        let g = FaultScheduleGen::new(3);
        for i in 0..30 {
            assert!(g.plan(i).expiry_us.is_some(), "liveness needs expiry");
        }
    }
}
