//! Living-web acceptance: the known-bad schedule, its shrink, and the
//! repro round trip — plus the benign living plans the oracle must
//! clear.
//!
//! The known-bad plan reproduces the historical footnote-3 bug: the
//! per-site document cache keyed on URL alone, so an edit of an
//! already-visited page left later visits answering from the pre-edit
//! parse. With `validate_doc_cache: false` the plan's culprit edit
//! turns into a `stale_visit` oracle violation; ddmin shrinks the
//! schedule to exactly that edit, and the `chaos-repro.json` encoding
//! replays it bit-identically.
//!
//! Timing: under the default plan's seeds, the first query fills
//! site0's doc cache at t≈13.1ms and the second query re-visits the
//! same page from cache at t≈14.5ms — so a mutation at t=14 000µs
//! lands exactly between the cache fill and the cached re-visit.

use webdis_chaos::plan::{ChaosPlan, FaultSpec};
use webdis_chaos::{repro, run_plan, shrink};

/// The page every chaos query starts from — guaranteed visited.
const VISITED: &str = "http://site0.test/doc0.html";

/// Between the first query's cache fill and the second query's cached
/// re-visit of [`VISITED`] (see module docs).
const BETWEEN_VISITS_US: u64 = 14_000;

fn edit(at_us: u64, url: &str, token: &str) -> FaultSpec {
    FaultSpec::Mutation {
        at_us,
        op: "edit_page".into(),
        url: url.into(),
        arg: token.into(),
    }
}

/// The known-bad plan: doc cache on, per-hit version validation OFF
/// (the historical bug), one culprit edit of the visited start page
/// placed between query arrivals, and benign riders the shrinker must
/// discard.
fn known_bad_plan() -> ChaosPlan {
    ChaosPlan {
        doc_cache_size: 8,
        validate_doc_cache: false,
        faults: vec![
            // Benign rider: a freshly created page has no pre-mutation
            // build to serve stale, and nothing links to it.
            FaultSpec::Mutation {
                at_us: 5_000,
                op: "create_page".into(),
                url: "http://site2.test/rider.html".into(),
                arg: "Rider Page".into(),
            },
            // The culprit: edits the visited page between the cache
            // fill and the cached re-visit.
            edit(BETWEEN_VISITS_US, VISITED, "culprit-token"),
            // Benign rider: light uniform report duplication.
            FaultSpec::Dup {
                from: "*".into(),
                to: "*".into(),
                rate_ppm: 20_000,
            },
        ],
        ..ChaosPlan::default()
    }
}

#[test]
fn known_bad_schedule_triggers_stale_visit() {
    let report = run_plan(&known_bad_plan()).expect("plan runs");
    assert!(
        report.has_kind("stale_visit"),
        "unvalidated doc cache + mid-run edit must serve stale: {}",
        report.verdict_line()
    );
    // Staleness is a *consistency* failure, not a liveness or row-loss
    // one: the run still completes and invents nothing.
    assert!(!report.has_kind("hang"), "{}", report.verdict_line());
    assert!(!report.has_kind("row_excess"), "{}", report.verdict_line());
}

#[test]
fn shrink_isolates_the_culprit_edit() {
    let plan = known_bad_plan();
    let shrunk = shrink(&plan, |candidate| {
        run_plan(candidate).is_ok_and(|r| r.has_kind("stale_visit"))
    });
    assert_eq!(
        shrunk.plan.faults,
        vec![edit(BETWEEN_VISITS_US, VISITED, "culprit-token")],
        "ddmin must strip both riders and keep the culprit edit"
    );
}

#[test]
fn stale_visit_repro_round_trips_and_replays() {
    let plan = known_bad_plan();
    let text = repro::encode(&plan, Some("stale_visit"));
    let (decoded, violation) = repro::decode(&text).expect("repro parses");
    assert_eq!(decoded, plan, "chaos-repro.json must replay bit-identically");
    assert_eq!(violation.as_deref(), Some("stale_visit"));

    let original = run_plan(&plan).expect("original runs");
    let replayed = run_plan(&decoded).expect("replay runs");
    assert!(replayed.has_kind("stale_visit"));
    assert_eq!(
        original.verdict_line(),
        replayed.verdict_line(),
        "replay must reach the same verdict"
    );
}

#[test]
fn validated_doc_cache_upholds_the_contract_on_the_same_schedule() {
    // The exact schedule that breaks the unvalidated cache is benign
    // once the per-hit version check is on: the edit invalidates the
    // cached build, and the re-visit re-parses current content.
    let plan = ChaosPlan {
        validate_doc_cache: true,
        ..known_bad_plan()
    };
    let report = run_plan(&plan).expect("plan runs");
    assert!(
        report.violations.is_empty(),
        "validated cache must clear the oracle: {}",
        report.verdict_line()
    );
}

#[test]
fn page_deletion_terminates_gracefully_and_stays_benign() {
    let plan = ChaosPlan {
        doc_cache_size: 8,
        faults: vec![FaultSpec::Mutation {
            at_us: BETWEEN_VISITS_US,
            op: "delete_page".into(),
            url: "http://site0.test/doc1.html".into(),
            arg: String::new(),
        }],
        ..ChaosPlan::default()
    };
    let report = run_plan(&plan).expect("plan runs");
    assert!(
        report.violations.is_empty(),
        "link rot is benign by contract: {}",
        report.verdict_line()
    );
    assert!(
        report
            .faulty
            .records
            .iter()
            .any(|r| r.complete && r.dead_link_nodes > 0),
        "the deleted page must be reached and terminated around, not missed"
    );
}

#[test]
fn generated_living_plans_run_deterministically() {
    // A slice of the sweep that includes mutated plans: the whole
    // report — violations and verdict line — must be a pure function
    // of the plan.
    let g = webdis_chaos::gen::FaultScheduleGen::new(0xFA57);
    let mut saw_mutated = false;
    for i in 0..6 {
        let plan = g.plan(i);
        saw_mutated |= plan.has_mutations();
        let a = run_plan(&plan).expect("first run");
        let b = run_plan(&plan).expect("second run");
        assert_eq!(a.verdict_line(), b.verdict_line(), "plan {i} diverged");
    }
    assert!(saw_mutated, "the slice should exercise at least one living plan");
}
