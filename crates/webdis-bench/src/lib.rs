#![warn(missing_docs)]

//! Shared infrastructure for the experiment harnesses.
//!
//! Each binary under `src/bin/` regenerates one figure or table of
//! `EXPERIMENTS.md`:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_traversal` | Figure 1 — web traversal path and node roles |
//! | `fig5_multivisit` | Figure 5 — multiple visits to a node, log-table effect |
//! | `fig7_campus_trace` | Figure 7 — sample query traversal with states |
//! | `fig8_campus_results` | Figure 8 — result table of the sample query |
//! | `t1_shipping_vs_size` | T1 — traffic vs web size, both engines |
//! | `t2_selectivity` | T2 — traffic vs predicate selectivity |
//! | `t3_logtable_ablation` | T3 — duplicate elimination on/off |
//! | `t4_cht_overhead` | T4 — completion-protocol overhead, paper vs strict |
//! | `t5_batching` | T5 — §3.2 batching optimizations on/off |
//! | `t6_latency` | T6 — first-result/completion latency, both engines |
//! | `t7_migration` | T7 — §7.1 hybrid migration path, participation sweep |
//! | `t8_purge_period` | T8 — §3.1.1 log purge period vs recomputation |
//! | `t9_load_distribution` | T9 — per-endpoint load, both engines |
//! | `t10_doc_cache` | T10 — footnote-3 document cache under repeated queries |
//! | `t11_completion_protocols` | T11 — CHT vs §6's acknowledgement chains |
//! | `t12_fault_recovery` | T12 — §7.1 completion and recall under drops and crashes |
//! | `t13_throughput` | T13 — throughput and latency vs offered load, admission control |

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::Arc;

use webdis_trace::{trajectory, CollectingTracer, TraceHandle};

pub mod doctor;
pub mod live;

/// A fixed-width text table, the output format of every harness (the
/// repository has no plotting dependency; tables are the paper-facing
/// artifact).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<D: Display>(&mut self, cells: &[D]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The `--trace <path>` option shared by the harness binaries: when
/// present, installs a ring-buffer collector; [`TraceOpt::finish`]
/// writes the captured events as JSON lines to the path and prints the
/// reconstructed per-query trajectories plus the metrics registry.
pub struct TraceOpt {
    collector: Option<(Arc<CollectingTracer>, PathBuf)>,
    handle: TraceHandle,
}

impl TraceOpt {
    /// Collector capacity — generous for single-figure runs.
    const CAPACITY: usize = 65_536;

    /// Parses `--trace <path>` (or `--trace=<path>`) from the process
    /// arguments; absent flag means tracing stays disabled.
    pub fn from_args() -> TraceOpt {
        let args: Vec<String> = std::env::args().collect();
        let mut path: Option<PathBuf> = None;
        let mut i = 1;
        while i < args.len() {
            if let Some(p) = args[i].strip_prefix("--trace=") {
                path = Some(p.into());
            } else if args[i] == "--trace" && i + 1 < args.len() {
                path = Some(args[i + 1].clone().into());
                i += 1;
            }
            i += 1;
        }
        Self::with_path(path)
    }

    /// A trace option with an explicit output path (`None` = disabled).
    pub fn with_path(path: Option<PathBuf>) -> TraceOpt {
        match path {
            None => TraceOpt {
                collector: None,
                handle: TraceHandle::noop(),
            },
            Some(p) => {
                let (collector, handle) = TraceHandle::collecting(Self::CAPACITY);
                TraceOpt {
                    collector: Some((collector, p)),
                    handle,
                }
            }
        }
    }

    /// The handle to install into `EngineConfig::tracer`.
    pub fn handle(&self) -> TraceHandle {
        self.handle.clone()
    }

    /// True when `--trace` was given.
    pub fn enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Folds engine counters (e.g. `ServerStats::counters`) into the
    /// collector's registry under `prefix`, so the registry is the one
    /// reporting surface. No-op when tracing is disabled.
    pub fn ingest(&self, prefix: &str, counters: &[(&str, u64)]) {
        if let Some((collector, _)) = &self.collector {
            collector.registry().ingest_counters(prefix, counters);
        }
    }

    /// Writes the JSONL file and prints trajectories and metrics.
    /// No-op when tracing is disabled.
    pub fn finish(&self) -> std::io::Result<()> {
        let Some((collector, path)) = &self.collector else {
            return Ok(());
        };
        let records = collector.snapshot();
        std::fs::write(path, collector.export_jsonl())?;
        println!();
        println!("trace: {} events -> {}", records.len(), path.display());
        for id in trajectory::query_ids(&records) {
            println!();
            print!("{}", trajectory::reconstruct(&records, &id).render_text());
        }
        println!();
        print!("{}", collector.registry().snapshot().render_text());
        Ok(())
    }
}

/// Formats a byte count with a thousands separator for readability.
pub fn fmt_bytes(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio to one decimal.
pub fn fmt_ratio(num: u64, den: u64) -> String {
    if den == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}x", num as f64 / den as f64)
    }
}

/// Formats microseconds as milliseconds to one decimal.
pub fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["col", "value"]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Both data lines have equal width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(1234567), "1,234,567");
        assert_eq!(fmt_bytes(12), "12");
        assert_eq!(fmt_ratio(30, 10), "3.0x");
        assert_eq!(fmt_ratio(1, 0), "-");
        assert_eq!(fmt_ms(2500), "2.5");
    }
}
