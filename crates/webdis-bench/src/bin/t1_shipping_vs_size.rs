//! T1 — network traffic: query shipping vs data shipping, as the web
//! grows.
//!
//! The paper's core argument (Section 1) is that shipping the query and
//! returning only results beats downloading documents. This experiment
//! sweeps the number of sites with a fixed per-site layout and a fixed
//! needle-search query that traverses the whole web, and reports bytes
//! and messages for both strategies. Both must return identical result
//! sets.

use std::sync::Arc;

use webdis_bench::{fmt_bytes, fmt_ratio, Table};
use webdis_core::{run_datashipping_sim, run_query_sim, EngineConfig};
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url, d.title
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let mut table = Table::new(
        "T1: traffic vs web size (docs/site=4, ~600-word documents)",
        &[
            "sites",
            "docs",
            "rows",
            "qship bytes",
            "qship msgs",
            "dship bytes",
            "dship msgs",
            "byte ratio",
        ],
    );

    for sites in [4usize, 8, 16, 32, 64] {
        let cfg = WebGenConfig {
            sites,
            docs_per_site: 4,
            filler_words: 600,
            title_needle_prob: 0.25,
            seed: 11,
            ..WebGenConfig::default()
        };
        let web = Arc::new(generate(&cfg));

        let ship = run_query_sim(
            Arc::clone(&web),
            QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .expect("query parses");
        let data = run_datashipping_sim(Arc::clone(&web), QUERY, SimConfig::default())
            .expect("query parses");

        assert!(ship.complete && data.complete);
        assert_eq!(
            ship.result_set(),
            data.result_set(),
            "strategies must agree"
        );

        table.row(&[
            sites.to_string(),
            web.len().to_string(),
            ship.result_set().len().to_string(),
            fmt_bytes(ship.metrics.total.bytes),
            ship.metrics.total.messages.to_string(),
            fmt_bytes(data.metrics.total.bytes),
            data.metrics.total.messages.to_string(),
            fmt_ratio(data.metrics.total.bytes, ship.metrics.total.bytes),
        ]);

        // The headline claim must hold at every size.
        assert!(
            data.metrics.total.bytes > ship.metrics.total.bytes,
            "query shipping must move fewer bytes at {sites} sites"
        );
    }
    table.print();
    println!("\nquery shipping beats data shipping on bytes at every web size ✓");
}
