//! Figure 1 — the web traversal path of `Q = S G·(G|L) q1 (G|L) q2`.
//!
//! Reproduces the paper's Figure 1 narrative as a machine-checked trace:
//! nodes 1–3 act as PureRouters, nodes 4/5 answer `q1`, node 4 acts as a
//! ServerRouter a **second** time for `q2`, nodes 6/8 answer `q2`, and
//! node 7 evaluates `q1`, fails, and dead-ends.
//!
//! Pass `--trace fig1.jsonl` to capture the structured event stream and
//! print the reconstructed shipping tree (see DESIGN.md, Observability).

use std::collections::BTreeMap;
use std::sync::Arc;

use webdis_bench::{Table, TraceOpt};
use webdis_core::{run_query_sim, EngineConfig};
use webdis_net::Disposition;
use webdis_sim::SimConfig;
use webdis_web::figures;

fn main() {
    let trace = TraceOpt::from_args();
    let web = Arc::new(figures::figure1());
    let outcome = run_query_sim(
        web,
        figures::FIG_QUERY,
        EngineConfig {
            tracer: trace.handle(),
            ..EngineConfig::default()
        },
        SimConfig::default(),
    )
    .expect("figure query parses");
    assert!(outcome.complete, "CHT must detect completion");

    let mut table = Table::new(
        "Figure 1: traversal of Q = S G·(G|L) q1 (G|L) q2",
        &["node", "arrival state", "role", "answers"],
    );
    let mut roles: BTreeMap<String, Vec<Disposition>> = BTreeMap::new();
    for ev in &outcome.trace {
        let answers = if ev.stages_answered.is_empty() {
            "-".to_owned()
        } else {
            ev.stages_answered
                .iter()
                .map(|s| format!("q{}", s + 1))
                .collect::<Vec<_>>()
                .join(",")
        };
        table.row(&[
            ev.node.host().trim_end_matches(".test").to_owned(),
            ev.state.to_string(),
            ev.disposition.label().to_owned(),
            answers,
        ]);
        roles
            .entry(ev.node.host().to_owned())
            .or_default()
            .push(ev.disposition);
    }
    table.print();

    // The paper's Figure 1 claims, machine-checked:
    for router in ["n1.test", "n2.test", "n3.test"] {
        assert_eq!(
            roles[router],
            vec![Disposition::PureRouted],
            "{router} is a PureRouter"
        );
    }
    let n4 = &roles["n4.test"];
    assert_eq!(
        n4,
        &vec![Disposition::Answered, Disposition::Answered],
        "node 4 acts as a ServerRouter twice (q1, then q2)"
    );
    assert_eq!(
        roles["n5.test"],
        vec![Disposition::Answered],
        "node 5 answers q1"
    );
    assert_eq!(
        roles["n6.test"],
        vec![Disposition::Answered],
        "node 6 answers q2"
    );
    assert_eq!(
        roles["n8.test"],
        vec![Disposition::Answered],
        "node 8 answers q2"
    );
    assert_eq!(
        roles["n7.test"],
        vec![Disposition::DeadEnd],
        "node 7 fails q1 and becomes a dead end"
    );

    println!();
    println!("q1 answered by: n4, n5  (titles containing \"hub\")");
    println!("q2 answered by: n4, n6, n8  (text containing \"answer\")");
    println!("all Figure 1 role assertions hold ✓");

    if trace.enabled() {
        trace.ingest("cht", &outcome.cht_stats.counters());
        // Sum the per-site server counters field-wise.
        let mut sums: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in outcome.server_stats.values() {
            for (name, v) in s.counters() {
                *sums.entry(name).or_default() += v;
            }
        }
        let pairs: Vec<(&str, u64)> = sums.into_iter().collect();
        trace.ingest("server", &pairs);
    }
    trace.finish().expect("trace file is writable");
}
