//! Figure 8 — the result table of the Section-5 sample query, rendered
//! the way the paper's browser screenshot presents it: the stage-1
//! binding (`d0.url`) first, then one row per lab with `d1.url`,
//! `d1.title` and the `hr`-delimited rel-infon text naming the convener.

use std::sync::Arc;

use webdis_bench::Table;
use webdis_core::{run_query_sim, EngineConfig};
use webdis_sim::SimConfig;
use webdis_web::figures;

fn main() {
    let web = Arc::new(figures::campus());
    let outcome = run_query_sim(
        web,
        figures::CAMPUS_QUERY,
        EngineConfig::default(),
        SimConfig::default(),
    )
    .expect("campus query parses");
    assert!(outcome.complete);

    println!("Results of the query by user webdis\n");

    let mut t0 = Table::new("d0", &["d0.url"]);
    for (_, row) in outcome.rows_of_stage(0) {
        t0.row(&[row.values[0].render()]);
    }
    t0.print();
    println!();

    let mut t1 = Table::new("d1 / r", &["d1.url", "d1.title", "r.text"]);
    let mut rows: Vec<_> = outcome.rows_of_stage(1).to_vec();
    rows.sort_by_key(|(_, r)| r.values[0].render());
    for (_, row) in &rows {
        t1.row(&[
            row.values[0].render(),
            row.values[1].render(),
            row.values[2].render(),
        ]);
    }
    t1.print();

    // Machine-check against the paper's Figure 8 rows.
    assert_eq!(rows.len(), 3);
    for (url, title, convener) in figures::CAMPUS_EXPECTED {
        let row = rows
            .iter()
            .find(|(_, r)| r.values[0].render() == url)
            .unwrap_or_else(|| panic!("Figure 8 row missing: {url}"));
        assert_eq!(row.1.values[1].render(), title);
        assert!(
            row.1.values[2].render().contains(convener),
            "{url}: rel-infon must name {convener}"
        );
    }
    println!("\nall Figure 8 result assertions hold ✓");
}
