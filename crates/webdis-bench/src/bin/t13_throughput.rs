//! T13 — throughput and latency vs offered load (the `webdis-load`
//! workload engine).
//!
//! The paper's experiments ship one query at a time; its prototype is a
//! *service*. This harness offers an open-loop Poisson workload from M
//! concurrent user sites against the simulated cluster — processor costs
//! set to the paper's 1999-workstation model so evaluation capacity, not
//! the network, is the bottleneck — and sweeps the offered load upward
//! until the saturation knee appears: completed-query throughput stops
//! tracking the offered rate, per-query latency climbs, and the
//! server-side admission controller starts shedding the excess instead
//! of letting queues (and the log tables) grow without bound.
//!
//! Every load point reports completions, sheds, throughput, and the
//! p50/p95/p99 of the `query_latency_us` registry histogram, plus the
//! `log_len_high_water` gauge. Two invariants are asserted at *every*
//! point: the run is seed-deterministic (same seed, same histogram), and
//! **no query ever hangs** — shed queries terminate with an explicit
//! `TermReason::Shed`, never silence.
//!
//! `--smoke` shrinks the sweep for CI.

use std::sync::Arc;

use webdis_bench::{fmt_ms, Table};
use webdis_core::{AdmissionPolicy, EngineConfig, ProcModel};
use webdis_load::{run_workload_sim_observed, ArrivalProcess, QueryMix, WorkloadSpec};
use webdis_sim::SimConfig;
use webdis_trace::{CollectingTracer, Histogram, TraceHandle};
use webdis_web::{generate, WebGenConfig};

const GLOBAL_QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

const LOCAL_QUERY: &str = r#"
    select d.url, d.title
    from document d such that "http://site0.test/doc0.html" L* d
    where d.title contains "needle"
"#;

/// Everything one load point observes.
struct LoadPoint {
    offered_qps: f64,
    clean: usize,
    shed: usize,
    hung: usize,
    throughput_qps: f64,
    latency: Histogram,
    log_high_water: u64,
}

fn run_point(mean_interarrival_us: u64, smoke: bool) -> LoadPoint {
    run_point_traced(mean_interarrival_us, smoke, false).0
}

/// One load point, returning the collector too (for `--trace` export)
/// and optionally printing a mid-flight Prometheus sample (`--expo`):
/// the simulator's on-demand snapshot API standing in for scraping a
/// live daemon.
fn run_point_traced(
    mean_interarrival_us: u64,
    smoke: bool,
    expo: bool,
) -> (LoadPoint, Arc<CollectingTracer>) {
    let web = Arc::new(generate(&WebGenConfig {
        sites: if smoke { 4 } else { 8 },
        docs_per_site: if smoke { 2 } else { 4 },
        extra_local_links: 1,
        extra_global_links: 1,
        title_needle_prob: 0.4,
        seed: 13,
        ..WebGenConfig::default()
    }));
    let spec = WorkloadSpec {
        users: if smoke { 2 } else { 4 },
        queries_per_user: if smoke { 3 } else { 12 },
        arrival: ArrivalProcess::Poisson {
            mean_interarrival_us,
        },
        mix: QueryMix::single(GLOBAL_QUERY).with(LOCAL_QUERY, 2),
        seed: 13,
        ..WorkloadSpec::default()
    };
    let (collector, tracer) = TraceHandle::collecting(65_536);
    let cfg = EngineConfig {
        // The paper's workstation costs make evaluation the bottleneck —
        // that is what produces a knee at a realistic offered load.
        proc: ProcModel::workstation_1999(),
        admission: Some(AdmissionPolicy { max_queries: 2 }),
        // Admission slots retire on purge sweeps once a query has been
        // idle a whole period; the period must therefore sit at the
        // query-duration scale (~15 ms here) or slots outlive their
        // queries and the controller sheds even an idle system.
        log_purge_us: Some(50_000),
        tracer,
        ..EngineConfig::default()
    };
    // Sample the exposition at the first tick that has seen evaluation
    // work — a scrape while the cluster is demonstrably mid-run (the
    // workload usually finishes far inside the spec horizon, so a
    // time-based midpoint would sample an already-idle system).
    let mut expo_sample: Option<(u64, String)> = None;
    let mut observer = |now: u64, snap: &webdis_trace::RegistrySnapshot| {
        if expo
            && expo_sample.is_none()
            && snap.histogram("stage_us.eval").is_some_and(|h| h.count > 0)
        {
            expo_sample = Some((now, snap.render_prometheus()));
        }
    };
    let outcome =
        run_workload_sim_observed(web, &spec, cfg, SimConfig::default(), &mut observer).unwrap();
    if let Some((at_us, sample)) = expo_sample {
        println!("--- /metrics sample at t={at_us}us (mid-flight) ---");
        for line in sample.lines().take(24) {
            println!("{line}");
        }
        println!("--- (truncated) ---\n");
    }
    let snapshot = collector.registry().snapshot();
    let latency = snapshot
        .histogram("query_latency_us")
        .cloned()
        .unwrap_or_default();
    let point = LoadPoint {
        offered_qps: spec.offered_qps(),
        clean: outcome.completed_clean(),
        shed: outcome.completed_shed(),
        hung: outcome.hung(),
        throughput_qps: outcome.completed_clean() as f64 * 1_000_000.0
            / outcome.duration_us.max(1) as f64,
        latency,
        log_high_water: snapshot.gauge("log_len_high_water"),
    };
    (point, collector)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let expo = args.iter().any(|a| a == "--expo");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Seed-determinism gate: the same point twice must agree down to the
    // latency histogram.
    let probe_us = 50_000;
    let (a, probe_collector) = run_point_traced(probe_us, smoke, expo);
    let b = run_point(probe_us, smoke);
    assert_eq!(
        (a.clean, a.shed, a.hung),
        (b.clean, b.shed, b.hung),
        "same seed must reproduce completion counts"
    );
    assert_eq!(
        a.latency, b.latency,
        "same seed must reproduce the latency histogram exactly"
    );

    // `--trace <path>`: dump the probe point's full JSONL trajectory for
    // offline diagnosis (`webdis-doctor <path>`).
    if let Some(path) = &trace_path {
        std::fs::write(path, probe_collector.export_jsonl()).expect("write trace file");
        println!("trace written to {path}");
    }

    // Offered-load sweep: per-user mean interarrival, high (idle) to low
    // (far past saturation).
    let sweep_us: &[u64] = if smoke {
        &[400_000, 50_000, 5_000]
    } else {
        &[
            800_000, 400_000, 200_000, 100_000, 50_000, 20_000, 10_000, 5_000, 2_000,
        ]
    };

    let mut table = Table::new(
        if smoke {
            "T13 (smoke): throughput vs offered load"
        } else {
            "T13: throughput and latency vs offered load (4 users, Poisson arrivals, \
             1999-workstation costs, admission limit 2/site)"
        },
        &[
            "offered q/s",
            "clean",
            "shed",
            "hung",
            "goodput q/s",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "log high-water",
        ],
    );
    let mut points = Vec::new();
    for &mean_us in sweep_us {
        let p = run_point(mean_us, smoke);
        assert_eq!(
            p.hung, 0,
            "no query may hang at any offered load (mean interarrival {mean_us}us)"
        );
        table.row(&[
            format!("{:.1}", p.offered_qps),
            p.clean.to_string(),
            p.shed.to_string(),
            p.hung.to_string(),
            format!("{:.1}", p.throughput_qps),
            fmt_ms(p.latency.quantile(0.50)),
            fmt_ms(p.latency.quantile(0.95)),
            fmt_ms(p.latency.quantile(0.99)),
            p.log_high_water.to_string(),
        ]);
        points.push(p);
    }
    table.print();

    // Locate and report the saturation knee: the last point whose clean
    // throughput still tracks ≥half the offered rate. (Past the knee the
    // per-point goodput is measured over an ever-shorter burst window, so
    // the completion counts — clean collapsing, shed climbing — are the
    // honest signal there.)
    let knee = points
        .iter()
        .rev()
        .find(|p| p.throughput_qps >= p.offered_qps * 0.5);
    if let Some(k) = knee {
        println!(
            "\nsaturation knee near {:.1} offered q/s (goodput {:.1} q/s there); \
             beyond it the excess is shed",
            k.offered_qps, k.throughput_qps
        );
    }

    if !smoke {
        let knee = knee.expect("the idle end of the sweep must keep up with offered load");
        // Throughput must rise from the idle end up to the knee…
        assert!(
            knee.offered_qps > points[0].offered_qps,
            "the knee must sit beyond the idle end of the sweep"
        );
        assert!(
            knee.throughput_qps > points[0].throughput_qps * 1.5,
            "throughput must rise with offered load before the knee \
             (idle {:.2} q/s, knee {:.2} q/s)",
            points[0].throughput_qps,
            knee.throughput_qps
        );
        // …and the overloaded end must visibly shed rather than keep up.
        let last = points.last().unwrap();
        assert!(
            last.shed > 0,
            "the overloaded end must trip admission control"
        );
        assert!(
            (last.clean as f64) < 0.25 * (last.clean + last.shed) as f64,
            "the overloaded end must be past the knee \
             (clean {}, shed {})",
            last.clean,
            last.shed
        );
        println!("goodput rises with load, saturates, and the excess is shed — never hung ✓");
    } else {
        println!("\nsmoke run: determinism and zero-hang invariants hold ✓");
    }
}
