//! T6 — response latency under a wide-area latency model.
//!
//! Data shipping serializes round trips through the user site (download,
//! inspect, download the next wave), while query shipping fans out
//! across servers and streams results back as they are found. The
//! virtual-clock simulator measures time-to-first-result and
//! time-to-completion for both engines as the web (and hence the
//! traversal depth) grows, under WAN latency (80 ms/message, ~1 Mbit/s)
//! and a 1999-workstation CPU model (1 ms/KiB parsed, 200 µs per
//! evaluation): the parses that query shipping spreads across the
//! servers all queue on the user site's single processor under data
//! shipping.

use std::sync::Arc;

use webdis_bench::{fmt_ms, Table};
use webdis_core::{run_datashipping_sim_with, run_query_sim, EngineConfig, ProcModel};
use webdis_sim::{LatencyModel, SimConfig};
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let mut table = Table::new(
        "T6: latency under WAN model (ms of virtual time)",
        &[
            "sites",
            "qship first",
            "qship done",
            "dship first",
            "dship done",
            "completion speedup",
        ],
    );

    for sites in [4usize, 8, 16, 32] {
        let cfg = WebGenConfig {
            sites,
            docs_per_site: 3,
            filler_words: 300,
            title_needle_prob: 0.4,
            seed: 67,
            ..WebGenConfig::default()
        };
        let web = Arc::new(generate(&cfg));
        let sim = SimConfig {
            latency: LatencyModel::wan(),
            ..SimConfig::default()
        };

        let proc = ProcModel::workstation_1999();
        let ship = run_query_sim(
            Arc::clone(&web),
            QUERY,
            EngineConfig {
                proc,
                ..EngineConfig::default()
            },
            sim.clone(),
        )
        .expect("query parses");
        let data =
            run_datashipping_sim_with(Arc::clone(&web), QUERY, sim, proc).expect("query parses");
        assert!(ship.complete && data.complete);
        assert_eq!(ship.result_set(), data.result_set());

        let ship_done = ship.completed_at_us.unwrap_or(ship.duration_us);
        let data_done = data.completed_at_us.unwrap_or(data.duration_us);
        table.row(&[
            sites.to_string(),
            fmt_ms(ship.first_result_us.unwrap_or(0)),
            fmt_ms(ship_done),
            fmt_ms(data.first_result_us.unwrap_or(0)),
            fmt_ms(data_done),
            format!("{:.1}x", data_done as f64 / ship_done as f64),
        ]);

        assert!(
            ship_done < data_done,
            "query shipping must complete earlier at {sites} sites"
        );
    }
    table.print();
    println!("\nquery shipping completes earlier at every size under WAN latency ✓");
}
