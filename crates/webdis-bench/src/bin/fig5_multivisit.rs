//! Figure 5 — multiple visits to a node, and what the node-query log
//! table (Section 3.1.1) saves.
//!
//! The Figure 5 web funnels five distinct paths into node 4 under
//! `Q = S G·(G|L) q1 (G|L) q2`, producing the paper's five visits:
//! `a = (2, G|L)`, `b = (2, N)`, and `c = d = e = (1, N)` — the last
//! three *in the same state of computation*. With the log table, only
//! `a`, `b` and `c` are processed; `d` and `e` are recognized as
//! duplicates and dropped. The harness shows the visit table and then
//! quantifies the saving by re-running with the log table disabled.

use std::sync::Arc;

use webdis_bench::Table;
use webdis_core::{ChtMode, EngineConfig, LogMode};
use webdis_net::Disposition;
use webdis_sim::SimConfig;
use webdis_web::figures;

fn main() {
    let web = Arc::new(figures::figure5());

    // Strict CHT mode makes duplicate drops visible in the trace (paper
    // mode drops them silently, which is the point of §3.1.1 — but the
    // figure wants to *show* them).
    let strict = EngineConfig {
        cht_mode: ChtMode::Strict,
        ..EngineConfig::default()
    };
    let outcome = webdis_core::run_query_sim(
        Arc::clone(&web),
        figures::FIG_QUERY,
        strict.clone(),
        SimConfig::default(),
    )
    .expect("figure query parses");
    assert!(outcome.complete);

    let mut table = Table::new(
        "Figure 5: visits to node 4 under Q = S G·(G|L) q1 (G|L) q2",
        &["visit", "arrival state", "log table verdict"],
    );
    let mut visits = Vec::new();
    for ev in &outcome.trace {
        if ev.node.host() == "n4.test" {
            visits.push(ev.clone());
        }
    }
    // Reports arrive at the user site in network order (an evaluated
    // arrival's report is larger, hence slower, than a duplicate-drop
    // notice); present them in the paper's narrative order: by remaining
    // work, processed visits before their duplicates.
    visits.sort_by_key(|v| {
        (
            std::cmp::Reverse(v.state.num_q),
            v.state.rem_pre.to_string(),
            v.disposition == Disposition::Duplicate,
        )
    });
    for (i, ev) in visits.iter().enumerate() {
        let verdict = match ev.disposition {
            Disposition::Duplicate => "equivalent state seen — dropped",
            Disposition::Answered => "new state — evaluated",
            Disposition::PureRouted | Disposition::DeadEnd => "new state — routed/dead-end",
            Disposition::Rewritten => "superset — rewritten",
            Disposition::Handoff => "handed off",
            Disposition::Shed => "shed by admission control",
            Disposition::DeadLink => "dead link — target deleted",
        };
        table.row(&[
            ((b'a' + i as u8) as char).to_string(),
            ev.state.to_string(),
            verdict.to_owned(),
        ]);
    }
    table.print();

    assert_eq!(visits.len(), 5, "the paper's five visits a–e");
    let dup_count = visits
        .iter()
        .filter(|v| v.disposition == Disposition::Duplicate)
        .count();
    assert_eq!(dup_count, 2, "d and e are recognized as duplicates");
    let same_state = visits
        .iter()
        .filter(|v| v.state.to_string() == "(1, N)")
        .count();
    assert_eq!(same_state, 3, "c, d, e arrive in the same state");

    // Quantify: log table on vs off.
    let on = outcome;
    let off_cfg = EngineConfig {
        log_mode: LogMode::Off,
        ..strict
    };
    let off =
        webdis_core::run_query_sim(web, figures::FIG_QUERY, off_cfg, SimConfig::default()).unwrap();
    assert!(off.complete);
    assert_eq!(on.result_set(), off.result_set(), "results are unaffected");

    let mut cmp = Table::new(
        "log table effect (same query, same web)",
        &[
            "config",
            "node-query evaluations",
            "messages",
            "duplicate rows received",
        ],
    );
    let dup_rows = |o: &webdis_core::QueryOutcome| {
        let total: usize = o.total_rows();
        let distinct = o.result_set().len();
        total - distinct
    };
    cmp.row(&[
        "log table ON".to_owned(),
        on.sum_stat(|s| s.evaluations).to_string(),
        on.metrics.total.messages.to_string(),
        dup_rows(&on).to_string(),
    ]);
    cmp.row(&[
        "log table OFF".to_owned(),
        off.sum_stat(|s| s.evaluations).to_string(),
        off.metrics.total.messages.to_string(),
        dup_rows(&off).to_string(),
    ]);
    println!();
    cmp.print();
    assert!(
        off.sum_stat(|s| s.evaluations) > on.sum_stat(|s| s.evaluations),
        "disabling the log table must cost recomputation"
    );
    println!("\nall Figure 5 assertions hold ✓");
}
