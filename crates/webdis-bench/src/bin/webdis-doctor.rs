//! `webdis-doctor` — diagnose a JSONL query-trajectory trace, or poll a
//! live cluster.
//!
//! ```text
//! webdis-doctor <trace.jsonl> [--top <k>] [--fail-on-anomaly]
//! webdis-doctor --live <host:port> [--polls <n>] [--interval-ms <ms>]
//! webdis-doctor --live-smoke
//! ```
//!
//! Offline mode ingests a trace written by any `--trace`-capable harness
//! (or by `CollectingTracer::export_jsonl`) — streamed line-at-a-time,
//! so multi-gigabyte traces never load whole — and prints: per-query
//! critical-path hop/stage breakdowns, the top-k slowest queries with
//! their dominant stage, the alert timeline (every `alert_fired` /
//! `alert_resolved` transition, plus rules still open at end of trace),
//! hang/orphan detection, per-site busy/idle utilization timelines, and
//! wire-byte accounting per message type. With `--fail-on-anomaly` the
//! process exits non-zero when any orphaned or hung trajectory is found
//! — the CI gate over the t13 smoke trace.
//!
//! `--live` polls a running daemon's admin socket (`/status` +
//! `/metrics`) and renders the in-flight query table, firing alerts,
//! and fleet stage shares. `--live-smoke` runs that loop against an
//! in-process monitored cluster — the CI smoke for the live path.

use webdis_bench::{doctor, live};

fn usage() -> ! {
    eprintln!(
        "usage: webdis-doctor <trace.jsonl> [--top <k>] [--fail-on-anomaly]\n\
         \x20      webdis-doctor --live <host:port> [--polls <n>] [--interval-ms <ms>]\n\
         \x20      webdis-doctor --live-smoke"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut path: Option<String> = None;
    let mut top = 5usize;
    let mut fail_on_anomaly = false;
    let mut live_addr: Option<String> = None;
    let mut live_smoke = false;
    let mut polls = 3usize;
    let mut interval_ms = 500u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--fail-on-anomaly" => fail_on_anomaly = true,
            "--live" => {
                live_addr = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 1;
            }
            "--live-smoke" => live_smoke = true,
            "--polls" => {
                polls = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--interval-ms" => {
                interval_ms = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            arg if arg.starts_with("--") => usage(),
            arg => {
                if path.replace(arg.to_string()).is_some() {
                    usage();
                }
            }
        }
        i += 1;
    }

    if live_smoke {
        match live::live_smoke() {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(err) => {
                eprintln!("webdis-doctor: live smoke failed: {err}");
                std::process::exit(1);
            }
        }
    }
    if let Some(addr) = live_addr {
        let interval = std::time::Duration::from_millis(interval_ms);
        if let Err(err) = live::watch(&addr, polls.max(1), interval, |text| print!("{text}")) {
            eprintln!("webdis-doctor: live poll failed: {err}");
            std::process::exit(1);
        }
        return;
    }

    let Some(path) = path else { usage() };
    let records = match doctor::load_trace(std::path::Path::new(&path)) {
        Ok(records) => records,
        Err(err) => {
            eprintln!("webdis-doctor: {err}");
            std::process::exit(2);
        }
    };

    let diagnosis = doctor::diagnose(&records);
    print!("{}", diagnosis.render_text(top));

    if fail_on_anomaly && !diagnosis.anomalies.is_empty() {
        // Name the offending queries so the CI log alone pins the
        // failure without re-running the doctor locally.
        let offenders: Vec<String> = diagnosis
            .queries
            .iter()
            .filter(|q| q.orphans > 0 || !q.hung_visits.is_empty() || q.terminations.is_empty())
            .map(|q| {
                format!(
                    "{}#{}@{}:{}",
                    q.id.user, q.id.query_num, q.id.host, q.id.port
                )
            })
            .collect();
        eprintln!(
            "webdis-doctor: {} anomal{} found in quer{}: {}",
            diagnosis.anomalies.len(),
            if diagnosis.anomalies.len() == 1 {
                "y"
            } else {
                "ies"
            },
            if offenders.len() == 1 { "y" } else { "ies" },
            if offenders.is_empty() {
                "(none attributable to a single query)".to_string()
            } else {
                offenders.join(", ")
            }
        );
        std::process::exit(1);
    }
}
