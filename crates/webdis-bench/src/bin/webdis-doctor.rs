//! `webdis-doctor` — diagnose a JSONL query-trajectory trace.
//!
//! ```text
//! webdis-doctor <trace.jsonl> [--top <k>] [--fail-on-anomaly]
//! ```
//!
//! Ingests a trace written by any `--trace`-capable harness (or by
//! `CollectingTracer::export_jsonl`) and prints: per-query critical-path
//! hop/stage breakdowns, the top-k slowest queries with their dominant
//! stage, hang/orphan detection (a clone that was sent but never
//! received *and* has no `message_dropped` record to explain it is an
//! anomaly; one provably lost to fault injection is merely flagged),
//! per-site busy/idle utilization timelines, and wire-byte accounting
//! per message type. With `--fail-on-anomaly` the process exits
//! non-zero when any orphaned or hung trajectory is found — the CI
//! gate over the t13 smoke trace.

use webdis_bench::doctor;

fn usage() -> ! {
    eprintln!("usage: webdis-doctor <trace.jsonl> [--top <k>] [--fail-on-anomaly]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut path: Option<String> = None;
    let mut top = 5usize;
    let mut fail_on_anomaly = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--fail-on-anomaly" => fail_on_anomaly = true,
            arg if arg.starts_with("--") => usage(),
            arg => {
                if path.replace(arg.to_string()).is_some() {
                    usage();
                }
            }
        }
        i += 1;
    }
    let Some(path) = path else { usage() };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("webdis-doctor: cannot read {path}: {err}");
            std::process::exit(2);
        }
    };
    let records = match webdis_trace::json::decode_jsonl(&text) {
        Ok(records) => records,
        Err(err) => {
            eprintln!("webdis-doctor: {path} is not a valid trace: {err}");
            std::process::exit(2);
        }
    };

    let diagnosis = doctor::diagnose(&records);
    print!("{}", diagnosis.render_text(top));

    if fail_on_anomaly && !diagnosis.anomalies.is_empty() {
        // Name the offending queries so the CI log alone pins the
        // failure without re-running the doctor locally.
        let offenders: Vec<String> = diagnosis
            .queries
            .iter()
            .filter(|q| q.orphans > 0 || !q.hung_visits.is_empty() || q.terminations.is_empty())
            .map(|q| {
                format!(
                    "{}#{}@{}:{}",
                    q.id.user, q.id.query_num, q.id.host, q.id.port
                )
            })
            .collect();
        eprintln!(
            "webdis-doctor: {} anomal{} found in quer{}: {}",
            diagnosis.anomalies.len(),
            if diagnosis.anomalies.len() == 1 {
                "y"
            } else {
                "ies"
            },
            if offenders.len() == 1 { "y" } else { "ies" },
            if offenders.is_empty() {
                "(none attributable to a single query)".to_string()
            } else {
                offenders.join(", ")
            }
        );
        std::process::exit(1);
    }
}
