//! T2 — traffic vs predicate selectivity.
//!
//! Query shipping returns only matching rows, so its traffic grows with
//! the match rate, while data shipping downloads every traversed
//! document regardless. The sweep plants the needle in a growing
//! fraction of titles on a fixed 16-site web and reports both engines'
//! bytes: the query-shipping advantage is largest for selective queries
//! (the search-engine/site-map use cases of Section 1) and shrinks —
//! but is not eliminated — as everything matches.

use std::sync::Arc;

use webdis_bench::{fmt_bytes, fmt_ratio, Table};
use webdis_core::{run_datashipping_sim, run_query_sim, EngineConfig};
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url, d.title, d.length
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let mut table = Table::new(
        "T2: traffic vs selectivity (16 sites x 4 docs, ~600-word documents)",
        &[
            "needle prob",
            "rows",
            "qship bytes",
            "dship bytes",
            "byte ratio",
        ],
    );

    let mut prev_ship_bytes = 0u64;
    for prob in [0.0, 0.1, 0.25, 0.5, 1.0] {
        let cfg = WebGenConfig {
            sites: 16,
            docs_per_site: 4,
            filler_words: 600,
            title_needle_prob: prob,
            seed: 23,
            ..WebGenConfig::default()
        };
        let web = Arc::new(generate(&cfg));

        let ship = run_query_sim(
            Arc::clone(&web),
            QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .expect("query parses");
        let data = run_datashipping_sim(Arc::clone(&web), QUERY, SimConfig::default())
            .expect("query parses");
        assert!(ship.complete && data.complete);
        assert_eq!(ship.result_set(), data.result_set());

        table.row(&[
            format!("{prob:.2}"),
            ship.result_set().len().to_string(),
            fmt_bytes(ship.metrics.total.bytes),
            fmt_bytes(data.metrics.total.bytes),
            fmt_ratio(data.metrics.total.bytes, ship.metrics.total.bytes),
        ]);

        assert!(data.metrics.total.bytes > ship.metrics.total.bytes);
        if prob == 0.0 {
            prev_ship_bytes = ship.metrics.total.bytes;
        }
        if prob == 1.0 {
            assert!(
                ship.metrics.total.bytes > prev_ship_bytes,
                "more matches must mean more result traffic"
            );
        }
    }
    table.print();
    println!("\nquery-shipping traffic grows with match rate; advantage persists ✓");
}
