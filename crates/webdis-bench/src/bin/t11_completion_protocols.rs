//! T11 — completion-detection protocols head to head.
//!
//! Section 6 contrasts WEBDIS's Current Hosts Table with the
//! acknowledgement-chain detection of Abiteboul–Vianu-style systems
//! ("the StartNode acknowledges the message only if all the nodes to
//! which it had forwarded the query have acknowledged"). Both are
//! implemented here; the sweep measures what each costs and buys:
//!
//! * **protocol bytes** — CHT entries ride inside reports; ack chains
//!   send small separate ack messages but no CHT entries, and resultless
//!   nodes send the user nothing at all;
//! * **detection lag** — virtual time between the last result and
//!   detected completion: the CHT detects one report after the last node;
//!   the ack wave must collapse back up the spawn tree first;
//! * **cancellation knowledge** — only the CHT tells the user *where*
//!   the query currently runs (Section 2.8's active-termination option).

use std::sync::Arc;

use webdis_bench::{fmt_bytes, fmt_ms, Table};
use webdis_core::{run_query_sim, ChtMode, CompletionMode, EngineConfig};
use webdis_sim::{LatencyModel, SimConfig};
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let mut table = Table::new(
        "T11: completion protocols under WAN latency",
        &[
            "sites",
            "protocol",
            "report bytes",
            "ack msgs",
            "ack bytes",
            "last result (ms)",
            "complete (ms)",
            "detection lag (ms)",
        ],
    );

    for sites in [4usize, 8, 16, 32] {
        let web = Arc::new(generate(&WebGenConfig {
            sites,
            docs_per_site: 3,
            filler_words: 80,
            title_needle_prob: 0.3,
            extra_global_links: 2,
            seed: 271,
            ..WebGenConfig::default()
        }));
        let sim = SimConfig {
            latency: LatencyModel::wan(),
            ..SimConfig::default()
        };

        let configs = [
            ("CHT (paper)", EngineConfig::default()),
            (
                "CHT (strict)",
                EngineConfig {
                    cht_mode: ChtMode::Strict,
                    ..EngineConfig::default()
                },
            ),
            ("ack chain", EngineConfig::ack_chain()),
        ];
        let mut results = Vec::new();
        for (label, cfg) in configs {
            let outcome = run_query_sim(Arc::clone(&web), QUERY, cfg.clone(), sim.clone())
                .expect("query parses");
            assert!(outcome.complete, "{label} must complete");
            // The last result row's arrival: the max trace time with rows.
            let last_result = outcome
                .trace
                .iter()
                .filter(|t| t.row_count > 0)
                .map(|t| t.time_us)
                .max()
                .unwrap_or(0);
            let done = outcome.completed_at_us.unwrap_or(outcome.duration_us);
            table.row(&[
                sites.to_string(),
                label.to_owned(),
                fmt_bytes(outcome.metrics.bytes_of("report")),
                outcome.metrics.messages_of("ack").to_string(),
                fmt_bytes(outcome.metrics.bytes_of("ack")),
                fmt_ms(last_result),
                fmt_ms(done),
                fmt_ms(done.saturating_sub(last_result)),
            ]);
            results.push((label, cfg.completion, outcome, last_result, done));
        }
        // All protocols agree on the rows.
        let reference = results[0].2.result_set();
        for (label, _, o, _, _) in &results {
            assert_eq!(o.result_set(), reference, "{label} must agree");
        }
        // Shape assertions: ack chains trade report bytes for ack
        // messages and a longer detection tail.
        let cht = &results[0];
        let ack = &results[2];
        assert!(ack.2.metrics.bytes_of("report") < cht.2.metrics.bytes_of("report"));
        assert!(ack.2.metrics.messages_of("ack") > 0);
        assert_eq!(cht.2.metrics.messages_of("ack"), 0);
        let cht_lag = cht.4.saturating_sub(cht.3);
        let ack_lag = ack.4.saturating_sub(ack.3);
        assert!(
            ack_lag >= cht_lag,
            "the ack wave cannot beat the CHT's one-hop detection \
             ({ack_lag} vs {cht_lag} µs at {sites} sites)"
        );
        assert_eq!(cht.1, CompletionMode::Cht);
        assert_eq!(ack.1, CompletionMode::AckChain);
    }
    table.print();
    println!(
        "\nack chains cut report bytes (no CHT entries, silent dead ends) but pay \
         ack messages and detect completion later — the §6 trade-off, measured ✓"
    );
}
