//! T12 — graceful recovery under faults (Section 7.1).
//!
//! The paper's fault-tolerance story is *graceful degradation*: query
//! servers are stateless between clones, the user site is the only
//! stateful party, and when a server crashes or the network eats a
//! message, the CHT's stale-entry expiry writes the lost clones off
//! explicitly so the query still terminates — with the results that did
//! arrive, plus a list of what was abandoned.
//!
//! This harness measures that degradation curve on the campus web:
//! uniform message-drop rates {0, 0.05, 0.1, 0.2} across a bundle of RNG
//! seeds, plus a one-site-crash scenario (the Database Systems Lab's
//! query server dies mid-query). Per scenario:
//!
//! * **complete %** — runs that terminated (the liveness guarantee: this
//!   must be 100% at every fault level, by expiry if necessary);
//! * **recall %** — surviving result rows relative to the fault-free
//!   baseline (faults may only *remove* rows, never invent them);
//! * **failed entries** — clones written off by expiry, averaged;
//! * **orphans** — trajectory-reconstruction orphan sends across all
//!   traces; dropped messages are first-class `message_dropped` events,
//!   so this must be zero.

use std::sync::Arc;

use webdis_bench::{Table, TraceOpt};
use webdis_core::{query_server_addr, run_query_sim, EngineConfig, ExpiryPolicy, QueryOutcome};
use webdis_model::Url;
use webdis_sim::SimConfig;
use webdis_trace::{trajectory, TraceHandle};
use webdis_web::figures;

const SEEDS: u64 = 10;
const EXPIRY: ExpiryPolicy = ExpiryPolicy {
    timeout_us: 50_000,
    period_us: 12_500,
};

/// One faulty run: the outcome plus its trace-reconstruction orphan count.
fn run_faulty(sim: SimConfig) -> (QueryOutcome, usize) {
    let (collector, handle) = TraceHandle::collecting(16_384);
    let cfg = EngineConfig {
        expiry: Some(EXPIRY),
        tracer: handle,
        ..EngineConfig::default()
    };
    let outcome = run_query_sim(Arc::new(figures::campus()), figures::CAMPUS_QUERY, cfg, sim)
        .expect("query parses");
    let records = collector.snapshot();
    let orphans: usize = trajectory::query_ids(&records)
        .iter()
        .map(|id| trajectory::reconstruct(&records, id).orphans.len())
        .sum();
    (outcome, orphans)
}

fn main() {
    let trace = TraceOpt::from_args();

    let baseline = run_query_sim(
        Arc::new(figures::campus()),
        figures::CAMPUS_QUERY,
        EngineConfig::default(),
        SimConfig::default(),
    )
    .expect("query parses");
    assert!(baseline.complete && baseline.failed_entries.is_empty());
    let reference = baseline.result_set();
    let baseline_done = baseline
        .completed_at_us
        .expect("fault-free run detects completion");

    let mut table = Table::new(
        "T12: completion and recall under faults (campus web)",
        &[
            "scenario",
            "runs",
            "complete %",
            "recall %",
            "avg failed",
            "dropped msgs",
            "orphans",
        ],
    );

    // The crash scenario: the DSL lab's query server dies while the
    // query is in flight (halfway into the fault-free completion time —
    // late enough that its clone has been announced to the CHT, early
    // enough that its report never leaves, so expiry must conclude).
    let dsl = Url::parse("http://dsl.serc.iisc.ernet.in/").unwrap().site();
    let crash_at = (baseline_done / 2).max(1);
    let scenarios: Vec<(String, Vec<SimConfig>)> = [0.0f64, 0.05, 0.1, 0.2]
        .iter()
        .map(|&rate| {
            let runs = (0..SEEDS)
                .map(|seed| SimConfig {
                    drop_rate: rate,
                    seed,
                    ..SimConfig::default()
                })
                .collect();
            (format!("drop {rate:.2}"), runs)
        })
        .chain(std::iter::once((
            "crash dsl @50%".to_owned(),
            (0..SEEDS)
                .map(|seed| SimConfig {
                    seed,
                    crashes: vec![(query_server_addr(&dsl), crash_at)],
                    ..SimConfig::default()
                })
                .collect(),
        )))
        .collect();

    let mut lossy_failed_total = 0usize;
    for (label, sims) in scenarios {
        let lossless = label == "drop 0.00";
        let runs = sims.len();
        let (mut completed, mut recall_sum, mut failed, mut dropped, mut orphans) =
            (0usize, 0.0f64, 0usize, 0u64, 0usize);
        for sim in sims {
            let (outcome, run_orphans) = run_faulty(sim);
            let rows = outcome.result_set();
            assert!(
                rows.is_subset(&reference),
                "{label}: faults may only remove rows, never invent them"
            );
            completed += usize::from(outcome.complete);
            recall_sum += rows.intersection(&reference).count() as f64 / reference.len() as f64;
            failed += outcome.failed_entries.len();
            dropped += outcome.metrics.dropped;
            orphans += run_orphans;
        }
        assert_eq!(completed, runs, "{label}: every run must terminate");
        assert_eq!(
            orphans, 0,
            "{label}: dropped sends must not orphan the trace"
        );
        if lossless {
            assert_eq!(failed, 0, "fault-free runs write nothing off");
            assert!((recall_sum - runs as f64).abs() < f64::EPSILON);
        } else {
            lossy_failed_total += failed;
        }
        table.row(&[
            label,
            runs.to_string(),
            format!("{:.0}", 100.0 * completed as f64 / runs as f64),
            format!("{:.1}", 100.0 * recall_sum / runs as f64),
            format!("{:.1}", failed as f64 / runs as f64),
            dropped.to_string(),
            orphans.to_string(),
        ]);
    }
    assert!(
        lossy_failed_total > 0,
        "the faulty scenarios must exercise expiry at least once"
    );
    table.print();

    // Showcase run for `--trace`: a seed known to lose a message.
    if trace.enabled() {
        let cfg = EngineConfig {
            expiry: Some(EXPIRY),
            tracer: trace.handle(),
            ..EngineConfig::default()
        };
        let outcome = run_query_sim(
            Arc::new(figures::campus()),
            figures::CAMPUS_QUERY,
            cfg,
            SimConfig {
                drop_rate: 0.1,
                seed: 6,
                ..SimConfig::default()
            },
        )
        .expect("query parses");
        trace.ingest("cht", &outcome.cht_stats.counters());
        trace.ingest(
            "sim",
            &[
                ("messages", outcome.metrics.total.messages),
                ("dropped", outcome.metrics.dropped),
                ("dropped_bytes", outcome.metrics.dropped_bytes),
            ],
        );
        trace.finish().expect("trace file is writable");
    }

    println!(
        "\nevery run terminates — losses surface as explicit failed entries and \
         reduced recall, never as a hang or invented rows (Section 7.1) ✓"
    );
}
