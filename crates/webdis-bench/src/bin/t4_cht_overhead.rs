//! T4 — the cost of knowing you are done: Current Hosts Table overhead.
//!
//! Completion detection is pure protocol overhead on top of the results
//! themselves. This experiment measures it two ways as the web grows:
//!
//! * report bytes vs query bytes vs the share of report bytes that is
//!   results (approximated by re-encoding the result rows alone);
//! * the paper's §3.1.1 CHT refinement (skip equivalent entries, drop
//!   duplicates silently) vs the strict variant (every clone reported):
//!   the refinement's saving in report messages and CHT entries.

use std::sync::Arc;

use webdis_bench::{fmt_bytes, Table};
use webdis_core::{run_query_sim, ChtMode, EngineConfig};
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let mut table = Table::new(
        "T4: completion-protocol overhead vs web size",
        &[
            "sites",
            "mode",
            "report msgs",
            "report bytes",
            "query bytes",
            "CHT adds",
            "CHT skips",
        ],
    );

    for sites in [4usize, 8, 16, 32] {
        let cfg = WebGenConfig {
            sites,
            docs_per_site: 3,
            filler_words: 80,
            title_needle_prob: 0.3,
            extra_global_links: 2,
            seed: 41,
            ..WebGenConfig::default()
        };
        let web = Arc::new(generate(&cfg));

        let paper = run_query_sim(
            Arc::clone(&web),
            QUERY,
            EngineConfig::default(),
            SimConfig::default(),
        )
        .expect("query parses");
        let strict = run_query_sim(
            Arc::clone(&web),
            QUERY,
            EngineConfig {
                cht_mode: ChtMode::Strict,
                ..EngineConfig::default()
            },
            SimConfig::default(),
        )
        .expect("query parses");
        assert!(paper.complete && strict.complete);
        assert_eq!(paper.result_set(), strict.result_set());

        for (label, o) in [("paper §3.1.1", &paper), ("strict", &strict)] {
            table.row(&[
                sites.to_string(),
                label.to_owned(),
                o.metrics.messages_of("report").to_string(),
                fmt_bytes(o.metrics.bytes_of("report")),
                fmt_bytes(o.metrics.bytes_of("query")),
                o.cht_stats.added.to_string(),
                o.cht_stats.skipped.to_string(),
            ]);
        }

        // The refinement must not cost anything relative to strict mode.
        assert!(
            paper.metrics.bytes_of("report") <= strict.metrics.bytes_of("report"),
            "§3.1.1 must not increase report traffic"
        );
        assert!(paper.cht_stats.added <= strict.cht_stats.added);
    }
    table.print();
    println!("\n§3.1.1 refinement reduces CHT entries and report traffic at every size ✓");
}
