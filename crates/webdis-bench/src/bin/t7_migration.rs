//! T7 — the Section 7.1 "gradual migration path", quantified.
//!
//! The paper promises: "we can expect a gradual migration path for
//! WEBDIS from a largely centralized to a fully distributed system as
//! more and more sites begin to host query servers." This experiment
//! runs the hybrid engine on a fixed web while the fraction of
//! participating sites sweeps from 0% (pure data shipping with CHT
//! accounting) to 100% (pure query shipping), reporting document bytes
//! downloaded, total traffic, fallback handoffs and distributed
//! re-entries.

use std::sync::Arc;

use webdis_bench::{fmt_bytes, Table};
use webdis_core::{run_query_hybrid_sim, run_query_sim, EngineConfig};
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url, d.title
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let web = Arc::new(generate(&WebGenConfig {
        sites: 16,
        docs_per_site: 4,
        filler_words: 500,
        title_needle_prob: 0.3,
        seed: 83,
        ..WebGenConfig::default()
    }));
    let all_sites = web.sites();

    let reference = run_query_sim(
        Arc::clone(&web),
        QUERY,
        EngineConfig::default(),
        SimConfig::default(),
    )
    .expect("query parses");
    assert!(reference.complete);

    let mut table = Table::new(
        "T7: hybrid migration path (16 sites x 4 docs)",
        &[
            "participating",
            "doc bytes downloaded",
            "total bytes",
            "handoffs",
            "re-entries",
            "rows",
        ],
    );

    let mut prev_docs = u64::MAX;
    for keep in [0usize, 2, 4, 8, 12, 16] {
        let participating: Vec<_> = all_sites.iter().take(keep).cloned().collect();
        let (outcome, stats) = run_query_hybrid_sim(
            Arc::clone(&web),
            QUERY,
            EngineConfig::default(),
            SimConfig::default(),
            &participating,
        )
        .expect("query parses");
        assert!(outcome.complete, "{keep}/16 participating must complete");
        assert_eq!(
            outcome.result_set(),
            reference.result_set(),
            "{keep}/16 participating must agree with full query shipping"
        );
        let doc_bytes = outcome.metrics.bytes_of("fetch-reply");
        table.row(&[
            format!("{keep}/16"),
            fmt_bytes(doc_bytes),
            fmt_bytes(outcome.metrics.total.bytes),
            stats.handoffs.to_string(),
            stats.reentries.to_string(),
            outcome.result_set().len().to_string(),
        ]);
        assert!(
            doc_bytes <= prev_docs,
            "downloads must not grow as participation grows"
        );
        prev_docs = doc_bytes;
        if keep == 16 {
            assert_eq!(doc_bytes, 0, "full participation downloads nothing");
            assert_eq!(stats.handoffs, 0);
        }
    }
    table.print();
    println!(
        "\nresults identical at every participation level; downloaded bytes fall \
         monotonically to zero — the paper's migration path, measured ✓"
    );
}
