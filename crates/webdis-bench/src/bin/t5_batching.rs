//! T5 — the §3.2 batching optimizations.
//!
//! Optimization 4 sends one clone per destination *site* carrying the
//! list of destination nodes; footnote 4 processes same-site destinations
//! in place rather than through the network. On a web with many documents
//! per site, the two together collapse most clone traffic. The grid runs
//! all four on/off combinations on the same web and query.

use std::sync::Arc;

use webdis_bench::{fmt_bytes, Table};
use webdis_core::{run_query_sim, EngineConfig};
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let web = Arc::new(generate(&WebGenConfig {
        sites: 8,
        docs_per_site: 8,
        filler_words: 60,
        title_needle_prob: 0.3,
        extra_local_links: 2,
        extra_global_links: 1,
        seed: 57,
        ..WebGenConfig::default()
    }));

    let mut table = Table::new(
        "T5: batching ablation (8 sites x 8 docs)",
        &[
            "per-site clones (opt 4)",
            "local processing (fn 4)",
            "clone msgs",
            "report msgs",
            "total bytes",
        ],
    );

    let mut results = Vec::new();
    for batch in [true, false] {
        for local in [true, false] {
            let cfg = EngineConfig {
                batch_per_site: batch,
                local_forwarding: local,
                ..EngineConfig::default()
            };
            let outcome = run_query_sim(Arc::clone(&web), QUERY, cfg, SimConfig::default())
                .expect("query parses");
            assert!(outcome.complete);
            table.row(&[
                if batch { "on" } else { "off" }.to_owned(),
                if local { "on" } else { "off" }.to_owned(),
                outcome.metrics.messages_of("query").to_string(),
                outcome.metrics.messages_of("report").to_string(),
                fmt_bytes(outcome.metrics.total.bytes),
            ]);
            results.push(((batch, local), outcome));
        }
    }
    table.print();

    // All four configurations return the same rows.
    let reference = results[0].1.result_set();
    for (_, outcome) in &results {
        assert_eq!(outcome.result_set(), reference);
    }
    // Everything-on must use the fewest clone messages.
    let msgs = |b: bool, l: bool| {
        results
            .iter()
            .find(|((bb, ll), _)| *bb == b && *ll == l)
            .map(|(_, o)| o.metrics.messages_of("query"))
            .unwrap()
    };
    assert!(msgs(true, true) <= msgs(false, true));
    assert!(msgs(true, true) <= msgs(true, false));
    assert!(msgs(true, true) < msgs(false, false));
    println!("\nboth batching optimizations reduce clone messages; combined is best ✓");
}
