//! T10 — the footnote-3 document cache under repeated queries.
//!
//! "Of course, if the site expects that a node will receive several
//! queries, it can choose to retain the associated database so that the
//! construction cost does not have to be paid repeatedly." (Section 2.4,
//! footnote 3.) A client process submits the same workload repeatedly
//! through one result endpoint (Section 4.3); the sweep varies each
//! server's cache capacity and reports Database-Constructor invocations
//! against cache hits.

use std::sync::Arc;

use webdis_bench::Table;
use webdis_core::simrun::{user_addr, PlainWebServer, SimServer};
use webdis_core::{query_server_addr, ClientProcess, EngineConfig, SimClient};
use webdis_sim::{SimConfig, SimNet};
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

const REPEATS: usize = 8;

fn run_with_cache(cache_size: usize) -> (u64, u64, bool) {
    let web = Arc::new(generate(&WebGenConfig {
        sites: 8,
        docs_per_site: 4,
        filler_words: 200,
        title_needle_prob: 0.3,
        seed: 59,
        ..WebGenConfig::default()
    }));
    let engine_cfg = EngineConfig {
        doc_cache_size: cache_size,
        ..EngineConfig::default()
    };
    let sites = web.sites();
    let mut net = SimNet::new(SimConfig::default());
    for site in &sites {
        net.register(
            site.clone(),
            Box::new(PlainWebServer::new(Arc::clone(&web))),
        );
        let engine =
            webdis_core::ServerEngine::new(site.clone(), Arc::clone(&web), engine_cfg.clone());
        net.register(query_server_addr(site), Box::new(SimServer { engine }));
    }
    let addr = user_addr();
    net.register(
        addr.clone(),
        Box::new(SimClient {
            client: ClientProcess::new("bench", addr.clone(), engine_cfg),
            submit_on_start: vec![QUERY.to_owned(); REPEATS],
        }),
    );
    net.start(&addr);
    net.run();

    let mut parsed = 0;
    let mut hits = 0;
    for site in &sites {
        if let Some(server) = net.actor_mut::<SimServer>(&query_server_addr(site)) {
            parsed += server.engine.stats.docs_parsed;
            hits += server.engine.stats.doc_cache_hits;
        }
    }
    let complete = net
        .actor_mut::<SimClient>(&addr)
        .map(|c| c.client.all_complete())
        .unwrap_or(false);
    (parsed, hits, complete)
}

fn main() {
    let mut table = Table::new(
        "T10: footnote-3 document cache, 8 identical queries (8 sites x 4 docs)",
        &[
            "cache size/site",
            "docs parsed",
            "cache hits",
            "parse reduction",
        ],
    );
    let (baseline, _, complete) = run_with_cache(0);
    assert!(complete);
    for size in [0usize, 1, 2, 4, 64] {
        let (parsed, hits, complete) = run_with_cache(size);
        assert!(complete, "cache size {size} must not affect completion");
        table.row(&[
            if size == 0 {
                "off".to_owned()
            } else {
                size.to_string()
            },
            parsed.to_string(),
            hits.to_string(),
            format!("{:.1}x", baseline as f64 / parsed as f64),
        ]);
        if size >= 4 {
            assert!(
                parsed as f64 <= baseline as f64 / 4.0,
                "a covering cache must amortize parsing across the {REPEATS} queries"
            );
        }
    }
    table.print();
    println!(
        "\nwith a covering cache each document is parsed once for all {REPEATS} \
         queries — footnote 3's retention policy, measured ✓"
    );
}
