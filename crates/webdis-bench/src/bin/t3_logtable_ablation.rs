//! T3 — what the node-query log table saves (Section 3.1.1).
//!
//! On a cross-linked web, clones reach the same node along many paths;
//! without the log table every arrival is recomputed and *re-forwarded*,
//! cascading ("a mirror clone chasing a previously processed clone over
//! the Web"). The sweep increases cross-link density and compares the
//! log table ON vs OFF: evaluations, clone messages, duplicate result
//! rows delivered to the user. OFF runs are bounded by the hop-count
//! safety valve (the web is cyclic), which is itself a measured quantity.

use std::sync::Arc;

use webdis_bench::Table;
use webdis_core::{run_query_sim, ChtMode, EngineConfig, LogMode};
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let mut table = Table::new(
        "T3: log-table ablation (acyclic web, 8 sites x 3 docs)",
        &[
            "extra links/doc",
            "config",
            "evaluations",
            "clone msgs",
            "dup rows",
        ],
    );

    for extra in [0usize, 1, 2, 3] {
        let cfg = WebGenConfig {
            sites: 8,
            docs_per_site: 3,
            filler_words: 40,
            title_needle_prob: 0.5,
            extra_local_links: extra,
            extra_global_links: extra,
            acyclic: true,
            seed: 31,
            ..WebGenConfig::default()
        };
        let web = Arc::new(generate(&cfg));

        let on_cfg = EngineConfig {
            cht_mode: ChtMode::Strict,
            ..EngineConfig::default()
        };
        let off_cfg = EngineConfig {
            log_mode: LogMode::Off,
            cht_mode: ChtMode::Strict,
            ..EngineConfig::default()
        };

        let on = run_query_sim(Arc::clone(&web), QUERY, on_cfg, SimConfig::default())
            .expect("query parses");
        let off = run_query_sim(Arc::clone(&web), QUERY, off_cfg, SimConfig::default())
            .expect("query parses");
        assert!(on.complete && off.complete);
        // The distinct result set is identical; only the duplicates and
        // the work differ.
        assert_eq!(on.result_set(), off.result_set());

        for (label, outcome) in [("log ON", &on), ("log OFF", &off)] {
            let dup_rows = outcome.total_rows() - outcome.result_set().len();
            table.row(&[
                extra.to_string(),
                label.to_owned(),
                outcome.sum_stat(|s| s.evaluations).to_string(),
                outcome.metrics.messages_of("query").to_string(),
                dup_rows.to_string(),
            ]);
        }

        assert!(
            off.sum_stat(|s| s.evaluations) >= on.sum_stat(|s| s.evaluations),
            "log table can only reduce evaluations"
        );
        if extra > 0 {
            assert!(
                off.sum_stat(|s| s.evaluations) > on.sum_stat(|s| s.evaluations),
                "cross links must cause recomputation without the log table"
            );
        }
    }
    table.print();
    println!("\nlog table eliminates all duplicate recomputation and its message cascade ✓");
}
