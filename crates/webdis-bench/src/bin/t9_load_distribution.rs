//! T9 — who does the work: load distribution across sites.
//!
//! Section 1's second argument against data shipping is "the client-site
//! becoming a processing bottleneck". This experiment measures, for the
//! same query on the same web, how messages and document-parsing work
//! distribute across endpoints under each strategy: data shipping
//! concentrates everything at the user site, query shipping spreads it in
//! proportion to each site's share of the web.

use std::sync::Arc;

use webdis_bench::Table;
use webdis_core::{run_datashipping_sim_with, run_query_sim, EngineConfig, ProcModel};
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn main() {
    let mut table = Table::new(
        "T9: load distribution (messages received at the busiest endpoint)",
        &[
            "sites",
            "strategy",
            "total msgs",
            "busiest endpoint",
            "its msgs",
            "share",
            "user-site CPU (ms)",
            "busiest server CPU (ms)",
        ],
    );

    for sites in [8usize, 16, 32] {
        let cfg = WebGenConfig {
            sites,
            docs_per_site: 4,
            filler_words: 150,
            title_needle_prob: 0.3,
            seed: 101,
            ..WebGenConfig::default()
        };
        let web = Arc::new(generate(&cfg));

        let proc = ProcModel::workstation_1999();
        let ship = run_query_sim(
            Arc::clone(&web),
            QUERY,
            EngineConfig {
                proc,
                ..EngineConfig::default()
            },
            SimConfig::default(),
        )
        .expect("query parses");
        let data = run_datashipping_sim_with(Arc::clone(&web), QUERY, SimConfig::default(), proc)
            .expect("query parses");
        assert!(ship.complete && data.complete);
        assert_eq!(ship.result_set(), data.result_set());

        for (label, o) in [("query ship", &ship), ("data ship", &data)] {
            let total = o.metrics.total.messages;
            let (busiest, load) = o
                .metrics
                .max_site_load()
                .map(|(s, n)| (s.to_string(), n))
                .unwrap_or(("-".into(), 0));
            let user_cpu = o
                .metrics
                .busy_us_by_site
                .iter()
                .filter(|(s, _)| s.host == "user.test")
                .map(|(_, us)| *us)
                .sum::<u64>();
            let server_cpu = o
                .metrics
                .busy_us_by_site
                .iter()
                .filter(|(s, _)| s.host != "user.test")
                .map(|(_, us)| *us)
                .max()
                .unwrap_or(0);
            table.row(&[
                sites.to_string(),
                label.to_owned(),
                total.to_string(),
                busiest,
                load.to_string(),
                format!("{:.0}%", 100.0 * load as f64 / total as f64),
                format!("{:.1}", user_cpu as f64 / 1000.0),
                format!("{:.1}", server_cpu as f64 / 1000.0),
            ]);
        }

        // The claims, machine-checked: under data shipping the user site
        // is the single busiest endpoint and receives ~half of all
        // messages (every fetch-reply); under query shipping the user
        // site receives only reports and no endpoint dominates as hard.
        let (d_busiest, d_load) = data.metrics.max_site_load().unwrap();
        assert_eq!(
            d_busiest.host, "user.test",
            "data shipping bottlenecks the user"
        );
        assert!(d_load as f64 >= 0.45 * data.metrics.total.messages as f64);
        let (_, s_load) = ship.metrics.max_site_load().unwrap();
        let s_share = s_load as f64 / ship.metrics.total.messages as f64;
        let d_share = d_load as f64 / data.metrics.total.messages as f64;
        assert!(
            s_share < d_share,
            "query shipping must spread load more evenly ({s_share:.2} vs {d_share:.2})"
        );
        // All parsing CPU lands on the user under data shipping; none
        // under query shipping.
        let ship_user_cpu: u64 = ship
            .metrics
            .busy_us_by_site
            .iter()
            .filter(|(s, _)| s.host == "user.test")
            .map(|(_, us)| *us)
            .sum();
        let data_user_cpu: u64 = data
            .metrics
            .busy_us_by_site
            .iter()
            .filter(|(s, _)| s.host == "user.test")
            .map(|(_, us)| *us)
            .sum();
        assert_eq!(ship_user_cpu, 0);
        assert!(data_user_cpu > 0);
    }
    table.print();
    println!(
        "\ndata shipping funnels ~half of all messages (and every parse) through \
         the user site; query shipping leaves the user with reports only ✓"
    );
}
