//! Figure 7 — traversal of the Section-5 sample query over the campus
//! web, with the clone state printed at every node (the paper's Figure 7
//! annotates the traversal diagram with exactly these states).

use std::sync::Arc;

use webdis_bench::{Table, TraceOpt};
use webdis_core::{run_query_sim, EngineConfig};
use webdis_net::Disposition;
use webdis_sim::SimConfig;
use webdis_web::figures;

fn main() {
    let trace = TraceOpt::from_args();
    let web = Arc::new(figures::campus());
    println!(
        "query (paper Example Query 2):\n{}\n",
        figures::CAMPUS_QUERY.trim()
    );

    let outcome = run_query_sim(
        Arc::clone(&web),
        figures::CAMPUS_QUERY,
        EngineConfig {
            tracer: trace.handle(),
            ..EngineConfig::default()
        },
        SimConfig::default(),
    )
    .expect("campus query parses");
    assert!(outcome.complete);

    println!("formal query: Q = {{http://www.csa.iisc.ernet.in/}} L q1 G·L*1 q2\n");

    let mut table = Table::new(
        "Figure 7: traversal of the sample query",
        &["t (ms)", "node", "state (num_q, rem PRE)", "outcome", "fwd"],
    );
    for ev in &outcome.trace {
        let outcome_txt = match ev.disposition {
            Disposition::Answered => format!(
                "answers {}",
                ev.stages_answered
                    .iter()
                    .map(|s| format!("q{}", s + 1))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            other => other.label().to_owned(),
        };
        table.row(&[
            format!("{:.1}", ev.time_us as f64 / 1000.0),
            ev.node.to_string(),
            ev.state.to_string(),
            outcome_txt,
            ev.forwards.to_string(),
        ]);
    }
    table.print();

    // Figure 7 invariants.
    let at = |host: &str, path: &str| {
        outcome
            .trace
            .iter()
            .find(|e| e.node.host() == host && e.node.path() == path)
            .unwrap_or_else(|| panic!("no trace event for {host}{path}"))
    };
    // The homepage is a PureRouter for the first PRE (L, not nullable).
    assert_eq!(
        at("www.csa.iisc.ernet.in", "/").disposition,
        Disposition::PureRouted
    );
    // The Labs page answers q1 and forwards the three lab clones.
    let labs = at("www.csa.iisc.ernet.in", "/Labs");
    assert_eq!(labs.disposition, Disposition::Answered);
    assert_eq!(labs.forwards, 3);
    // Decoy department pages dead-end (title lacks "lab").
    assert_eq!(
        at("www.csa.iisc.ernet.in", "/People").disposition,
        Disposition::DeadEnd
    );
    assert_eq!(
        at("www.csa.iisc.ernet.in", "/Research").disposition,
        Disposition::DeadEnd
    );
    // The DSL homepage fails q2 but still forwards along L*1.
    let dsl_home = at("dsl.serc.iisc.ernet.in", "/");
    assert!(dsl_home.forwards > 0, "residual L*1 keeps the clone moving");
    // The conveners' pages answer q2.
    assert_eq!(
        at("dsl.serc.iisc.ernet.in", "/people").disposition,
        Disposition::Answered
    );
    assert_eq!(
        at("www-compiler.csa.iisc.ernet.in", "/people").disposition,
        Disposition::Answered
    );
    assert_eq!(
        at("www2.csa.iisc.ernet.in", "/~gang/lab").disposition,
        Disposition::Answered
    );

    println!("\nall Figure 7 traversal assertions hold ✓");

    trace.finish().expect("trace file is writable");
}
