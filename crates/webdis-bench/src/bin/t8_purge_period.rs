//! T8 — log-table purge-period sensitivity (Section 3.1.1).
//!
//! "To ensure that the log table does not take undue space, the old
//! entries in the table are periodically purged. … even if the purging
//! time is incorrectly set too low resulting in duplicate Web queries
//! being recomputed, it only affects the performance of the system but
//! not the correctness of the results."
//!
//! The sweep runs the same query on the same cross-linked web while a
//! harness-driven purge fires at different periods, reporting peak log
//! size against recomputation cost — and asserting the paper's
//! correctness claim at every setting.

use std::sync::Arc;

use webdis_bench::Table;
use webdis_core::simrun::{build_sim, user_addr, SimServer, SimUser};
use webdis_core::{query_server_addr, ChtMode, EngineConfig};
use webdis_disql::parse_disql;
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

/// One run's observables: completion, peak log size, evaluations,
/// duplicate drops, and the canonical result set.
struct PurgeRun {
    complete: bool,
    peak_log: usize,
    evaluations: u64,
    drops: u64,
    results: std::collections::BTreeSet<(u32, String, Vec<String>)>,
}

/// Runs the query, purging every `period_us` of virtual time (0 = never).
fn run_with_purge(period_us: u64) -> PurgeRun {
    let web = Arc::new(generate(&WebGenConfig {
        sites: 10,
        docs_per_site: 3,
        extra_local_links: 2,
        extra_global_links: 2,
        title_needle_prob: 0.4,
        seed: 47,
        ..WebGenConfig::default()
    }));
    let sites = web.sites();
    let query = parse_disql(QUERY).unwrap();
    // Strict mode keeps completion exact however many duplicates the
    // purge-induced recomputation creates.
    let cfg = EngineConfig {
        cht_mode: ChtMode::Strict,
        ..EngineConfig::default()
    };
    let mut net = build_sim(Arc::clone(&web), query, cfg, SimConfig::default());
    net.start(&user_addr());

    let mut peak_log = 0usize;
    let mut next_purge = period_us;
    loop {
        let limit = if period_us == 0 { u64::MAX } else { next_purge };
        let more = net.run_until(limit);
        // Probe and purge.
        let mut total_log = 0usize;
        for site in &sites {
            if let Some(server) = net.actor_mut::<SimServer>(&query_server_addr(site)) {
                total_log += server.engine.log_len();
                if period_us != 0 {
                    let cutoff = next_purge.saturating_sub(period_us);
                    server.engine.purge_log(cutoff);
                }
            }
        }
        peak_log = peak_log.max(total_log);
        if !more {
            break;
        }
        next_purge += period_us;
    }

    let mut evals = 0;
    let mut dups = 0;
    for site in &sites {
        if let Some(server) = net.actor_mut::<SimServer>(&query_server_addr(site)) {
            evals += server.engine.stats.evaluations;
            dups += server.engine.stats.duplicates_dropped;
        }
    }
    let user = net.actor_mut::<SimUser>(&user_addr()).unwrap();
    let results = user
        .user
        .results
        .iter()
        .flat_map(|(stage, rows)| {
            rows.iter().map(move |(n, r)| {
                (
                    *stage,
                    n.to_string(),
                    r.values.iter().map(|v| v.render()).collect::<Vec<_>>(),
                )
            })
        })
        .collect();
    PurgeRun {
        complete: user.user.complete,
        peak_log,
        evaluations: evals,
        drops: dups,
        results,
    }
}

fn main() {
    let mut table = Table::new(
        "T8: log purge period vs recomputation (10 sites x 3 docs, cross-linked)",
        &[
            "purge period (ms)",
            "peak log records",
            "evaluations",
            "drops seen",
        ],
    );
    let reference = run_with_purge(0).results;
    for period_ms in [0u64, 50, 20, 10, 5, 2] {
        let run = run_with_purge(period_ms * 1000);
        assert!(run.complete, "period {period_ms}ms must still complete");
        assert_eq!(
            run.results, reference,
            "purging never affects correctness (period {period_ms}ms)"
        );
        table.row(&[
            if period_ms == 0 {
                "never".to_owned()
            } else {
                period_ms.to_string()
            },
            run.peak_log.to_string(),
            run.evaluations.to_string(),
            run.drops.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nshorter purge periods shrink the log but recompute more; the result \
         set is identical at every setting — the paper's §3.1.1 claim, verified ✓"
    );
}
