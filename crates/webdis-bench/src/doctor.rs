//! Trace diagnosis for `webdis-doctor`: turns a JSONL query-trajectory
//! trace into an actionable report.
//!
//! The doctor answers the questions an operator asks of a slow or
//! wedged run: *where did the time go* (per-query critical path with
//! hop and stage attribution), *which queries hurt* (top-k slowest with
//! their dominant stage), *did anything get lost* (hang/orphan
//! detection that distinguishes a clone dropped by fault injection —
//! visible as a `message_dropped` record — from one that silently
//! vanished), *were the sites busy* (per-site busy/idle timeline from
//! the stage spans), and *what did the wire carry* (byte accounting per
//! message type). Everything is computed from the trace alone, so the
//! same report works for simulator and TCP runs alike.

use std::collections::BTreeMap;

use webdis_trace::trajectory::{self, Trajectory, Visit};
use webdis_trace::{QueryId, TraceEvent, TraceRecord};

/// The pipeline stage names, in order (the same labels as the
/// `stage_us.*` registry histograms). `queue_wait` leads: it is the
/// backpressure span — time the clone's message waited before the
/// pipeline started — and is excluded from busy-time accounting (the
/// site is idle-or-otherwise-occupied while a message queues, not busy
/// on it).
pub const STAGES: [&str; 7] = [
    "queue_wait",
    "parse",
    "log",
    "cache_lookup",
    "eval",
    "build",
    "forward",
];

/// The backpressure span's stage label.
pub const QUEUE_STAGE: &str = "queue_wait";

/// One hop on a query's critical path.
#[derive(Debug, Clone)]
pub struct CriticalHop {
    /// The visited site.
    pub site: String,
    /// The clone's hop count at this visit.
    pub hop: u32,
    /// Transit time from the parent's send to this site's receive
    /// (`None` while the clone is still in flight).
    pub transit_us: Option<u64>,
    /// Total stage-attributed busy time at this visit.
    pub busy_us: u64,
    /// The visit's dominant stage, when any stage time was attributed.
    pub dominant_stage: Option<(&'static str, u64)>,
}

/// Everything the doctor concluded about one query.
#[derive(Debug, Clone)]
pub struct QueryDiagnosis {
    /// The query.
    pub id: QueryId,
    /// First to last stamped event, in trace microseconds.
    pub total_us: u64,
    /// Termination reasons observed (empty = the query never
    /// terminated — a hang).
    pub terminations: Vec<String>,
    /// The chain of visits that finished last — the completion-limiting
    /// path through the shipping tree.
    pub critical_path: Vec<CriticalHop>,
    /// Per-stage busy time summed over every visit.
    pub stage_totals: BTreeMap<&'static str, u64>,
    /// `query_sent` records whose parent visit could not be found.
    pub orphans: usize,
    /// Visits whose clone was provably lost to fault injection
    /// (`(site, hop, reason)`) — flagged, but *not* an anomaly.
    pub dropped_visits: Vec<(String, u32, String)>,
    /// Visits whose clone was sent but never received, with no drop
    /// record to explain it — a hang.
    pub hung_visits: Vec<(String, u32)>,
    /// Nodes written off by §7.1 expiry.
    pub expired_nodes: Vec<String>,
    /// Clones refused by admission control (destination-node counts).
    pub shed_clones: Vec<u32>,
    /// Extra message copies delivered by injected duplication
    /// (`(kind, to)`) — flagged, never an anomaly: the duplicate carries
    /// no `MessageSent`, so it cannot orphan or hang the trajectory.
    pub duplicated_deliveries: Vec<(String, String)>,
}

impl QueryDiagnosis {
    /// The stage with the most attributed time, if any stage saw any.
    pub fn dominant_stage(&self) -> Option<(&'static str, u64)> {
        self.stage_totals
            .iter()
            .filter(|(_, us)| **us > 0)
            .max_by_key(|(_, us)| **us)
            .map(|(s, us)| (*s, *us))
    }
}

/// Per-site busy/idle accounting over the run.
#[derive(Debug, Clone)]
pub struct SiteUtilization {
    /// The site host.
    pub site: String,
    /// Total stage-attributed busy microseconds.
    pub busy_us: u64,
    /// Busy microseconds per timeline bucket (fixed bucket count over
    /// the whole run).
    pub timeline: Vec<u64>,
}

/// One site's queue-wait vs service-time attribution — the inputs to
/// the utilization-law bottleneck call.
#[derive(Debug, Clone)]
pub struct SiteBottleneck {
    /// The site host.
    pub site: String,
    /// Clones processed (stage-span records seen).
    pub clones: u64,
    /// Total queue-wait microseconds across those clones.
    pub queue_us: u64,
    /// Total service (busy) microseconds across those clones.
    pub service_us: u64,
    /// The service stage with the most attributed time, if any.
    pub dominant_stage: Option<(&'static str, u64)>,
}

impl SiteBottleneck {
    /// Mean queue wait per clone, µs.
    pub fn mean_queue_us(&self) -> u64 {
        self.queue_us.checked_div(self.clones).unwrap_or(0)
    }

    /// Mean service time per clone, µs.
    pub fn mean_service_us(&self) -> u64 {
        self.service_us.checked_div(self.clones).unwrap_or(0)
    }

    /// Utilization over the run: service time / trace extent.
    pub fn utilization(&self, end_us: u64) -> f64 {
        self.service_us as f64 / end_us.max(1) as f64
    }
}

/// The utilization-law bottleneck report: per-site queue-wait vs
/// service-time attribution, with the saturated site named. The law in
/// play: for a single sequential processor per site, queue wait grows
/// without bound as utilization (service time per unit wall clock)
/// approaches 1 — so the site carrying the most queue wait *is* the
/// saturated one, and its dominant service stage is where added
/// capacity (or the multicore refactor) pays off first.
#[derive(Debug, Clone)]
pub struct BottleneckReport {
    /// Per-site attribution, sorted by total queue wait descending
    /// (service time breaks ties).
    pub sites: Vec<SiteBottleneck>,
}

impl BottleneckReport {
    /// The saturated site: the one with the most queue wait (most
    /// service time among queue-free sites). `None` when the trace
    /// carried no stage spans at all — e.g. zero completed queries.
    pub fn saturated(&self) -> Option<&SiteBottleneck> {
        self.sites.first()
    }
}

/// One site's answer-cache activity, accumulated from its
/// `cache_hit`/`cache_miss`/`cache_evict` trace events.
#[derive(Debug, Clone, Default)]
pub struct SiteCacheLine {
    /// The site host.
    pub site: String,
    /// Lookups served from the cache (exact and subsumed).
    pub hits: u64,
    /// The subset of `hits` served through subsumption replay.
    pub subsumed_hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
}

impl SiteCacheLine {
    /// Hits over consults; 0 when the site saw no lookups.
    pub fn hit_rate(&self) -> f64 {
        let consults = self.hits + self.misses;
        if consults == 0 {
            return 0.0;
        }
        self.hits as f64 / consults as f64
    }
}

/// The fleet-wide answer-cache report: per-site hit/miss/eviction
/// counts plus how often the cache shortened the completion-limiting
/// path. Empty (no sites, zero queries counted) when the trace carries
/// no cache events — caching off or a pre-cache trace.
#[derive(Debug, Clone, Default)]
pub struct CacheReport {
    /// Per-site activity, in site order.
    pub sites: Vec<SiteCacheLine>,
    /// Queries with at least one cache hit at a (site, hop) on their
    /// critical path — the hits that moved the completion time, not
    /// just some branch's.
    pub critical_path_served: usize,
    /// Queries examined (all queries in the trace, cached or not).
    pub queries: usize,
}

impl CacheReport {
    /// True when the trace recorded any cache activity at all.
    pub fn any_activity(&self) -> bool {
        !self.sites.is_empty()
    }

    /// Fraction of queries whose critical path had a cache hit on it.
    pub fn critical_path_fraction(&self) -> f64 {
        self.critical_path_served as f64 / self.queries.max(1) as f64
    }
}

/// One site's living-web activity, accumulated from the mutation
/// driver's `WebMutation` records.
#[derive(Debug, Clone, Default)]
pub struct SiteStalenessLine {
    /// The mutated site's host.
    pub site: String,
    /// `edit_page` mutations applied.
    pub edits: u64,
    /// `delete_page` mutations applied.
    pub deletes: u64,
    /// `create_page` mutations applied.
    pub creates: u64,
    /// Anchor grafts and site-membership changes.
    pub other: u64,
    /// The site's content version after its last traced mutation.
    pub final_version: u64,
}

/// One visit that answered from superseded content: a `DocFetch` whose
/// stamped version is older than the version the document had held
/// since strictly before the visit (a fetch at *exactly* a mutation's
/// instant may land on either side of it, so the boundary is tolerant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupersededVisit {
    /// The visiting server's host.
    pub site: String,
    /// The document served.
    pub url: String,
    /// Visit time on the trace clock.
    pub time_us: u64,
    /// The version the visit answered from.
    pub saw_version: u64,
    /// The version current since before the visit.
    pub current_version: u64,
}

/// The living-web staleness report: which sites changed mid-run, which
/// visits answered from superseded content, and which clones terminated
/// at dead links. Empty — and absent from the rendered report — on a
/// frozen trace (no `WebMutation` or `DeadLink` records), so pre-living
/// traces read exactly as before.
#[derive(Debug, Clone, Default)]
pub struct StalenessReport {
    /// Per-site mutation accounting, in site order.
    pub sites: Vec<SiteStalenessLine>,
    /// Visits that answered from superseded content. Flagged, not
    /// anomalous: only the plan's authoritative schedule (the chaos
    /// oracle's twin replay) can promote one to a contract violation.
    pub superseded_visits: Vec<SupersededVisit>,
    /// Dead-link terminations, `(site, node, version)` — link rot the
    /// engine completed around, flagged and *never* an anomaly.
    pub dead_links: Vec<(String, String, u64)>,
}

impl StalenessReport {
    /// True when the trace recorded any living-web activity at all.
    pub fn any_activity(&self) -> bool {
        !self.sites.is_empty() || !self.dead_links.is_empty()
    }
}

/// Wire traffic for one message kind.
#[derive(Debug, Clone, Default)]
pub struct WireLine {
    /// Message kind (`query`, `report`, …).
    pub kind: String,
    /// Messages put on the wire.
    pub msgs: u64,
    /// Bytes put on the wire.
    pub bytes: u64,
    /// Messages lost to fault injection.
    pub dropped_msgs: u64,
    /// Bytes lost to fault injection.
    pub dropped_bytes: u64,
    /// Messages lost to injected byte corruption (the decode-path drop).
    pub corrupted_msgs: u64,
    /// Bytes lost to injected byte corruption.
    pub corrupted_bytes: u64,
    /// Extra copies delivered by injected duplication.
    pub duplicated_msgs: u64,
    /// Bytes carried by those extra copies.
    pub duplicated_bytes: u64,
}

/// One alert transition lifted from the trace — the monitor's
/// `alert_fired`/`alert_resolved` records in time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertTimelineEntry {
    /// Trace timestamp of the transition (the closing window's end).
    pub time_us: u64,
    /// The rule's name.
    pub rule: String,
    /// True for fired, false for resolved.
    pub fired: bool,
    /// The signal value at the transition, fixed-point milli-units.
    pub value_milli: u64,
    /// The rule's threshold (0 on resolved records, which carry none).
    pub threshold_milli: u64,
}

/// The full diagnosis of a trace.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Per-query findings, in first-seen order.
    pub queries: Vec<QueryDiagnosis>,
    /// Per-site busy/idle accounting (sites with stage spans only).
    pub sites: Vec<SiteUtilization>,
    /// Wire byte accounting per message kind.
    pub wire: Vec<WireLine>,
    /// Queue-wait vs service-time attribution per site, saturated site
    /// first (the utilization-law bottleneck call).
    pub bottleneck: BottleneckReport,
    /// Answer-cache activity per site, plus the fraction of queries
    /// whose critical path was served from cache. Empty when the trace
    /// has no cache events.
    pub cache: CacheReport,
    /// Alert transitions in trace order (empty when no monitor ran).
    /// A rule still firing at the end of the trace is itself worth a
    /// look — the run ended inside an incident.
    pub alerts: Vec<AlertTimelineEntry>,
    /// Living-web staleness accounting: per-site mutations, superseded
    /// visits, dead-link terminations. Empty on a frozen trace.
    pub staleness: StalenessReport,
    /// Hard failures: orphaned sends and hung clones/queries. A clean
    /// trace has none, even under heavy injected loss.
    pub anomalies: Vec<String>,
    /// Notable-but-explained events: injected drops, expiries, sheds.
    pub flagged: Vec<String>,
    /// Last event timestamp (the run's extent on the trace clock).
    pub end_us: u64,
}

/// Timeline buckets per site in the utilization report.
const TIMELINE_BUCKETS: usize = 24;

fn visit_finish_us(v: &Visit) -> u64 {
    v.received_us.unwrap_or(v.sent_us)
}

/// The chain of visits that finished last, root excluded.
fn critical_chain(root: &Visit) -> Vec<&Visit> {
    let mut chain = Vec::new();
    let mut cur = root;
    loop {
        let next = cur.children.iter().max_by_key(|c| {
            // Deepest finish time anywhere in the child's subtree.
            fn subtree_max(v: &Visit) -> u64 {
                v.children
                    .iter()
                    .map(subtree_max)
                    .max()
                    .unwrap_or(0)
                    .max(visit_finish_us(v))
            }
            subtree_max(c)
        });
        match next {
            Some(child) => {
                chain.push(child);
                cur = child;
            }
            None => break,
        }
    }
    chain
}

fn in_flight_visits(root: &Visit) -> Vec<(String, u32, u64)> {
    let mut out = Vec::new();
    fn walk(v: &Visit, out: &mut Vec<(String, u32, u64)>, is_root: bool) {
        if !is_root && v.received_us.is_none() {
            out.push((v.site.clone(), v.hop, v.sent_us));
        }
        for c in &v.children {
            walk(c, out, false);
        }
    }
    walk(root, &mut out, true);
    out
}

/// A dropped-query record explains an in-flight visit when the kinds,
/// query, and hop line up and the drop's destination host resolves to
/// the visit's site (transports stamp the query-server host, e.g.
/// `wdqs.site0.test`, while the shipping tree uses the plain site).
fn drop_explains(to: &str, hop: Option<u32>, visit_site: &str, visit_hop: u32) -> bool {
    let site_match = to == visit_site || to.ends_with(&format!(".{visit_site}"));
    site_match && hop.is_none_or(|h| h == visit_hop)
}

/// Diagnoses a full record stream.
pub fn diagnose(records: &[TraceRecord]) -> Diagnosis {
    let end_us = records.iter().map(|r| r.time_us).max().unwrap_or(0);
    let mut anomalies = Vec::new();
    let mut flagged = Vec::new();

    // Wire accounting straight from the transport records.
    let mut wire_map: BTreeMap<String, WireLine> = BTreeMap::new();
    for r in records {
        let (kind, bytes) = match &r.event {
            TraceEvent::MessageSent { kind, bytes, .. }
            | TraceEvent::MessageDropped { kind, bytes, .. }
            | TraceEvent::MessageCorrupted { kind, bytes, .. }
            | TraceEvent::MessageDuplicated { kind, bytes, .. } => (kind, u64::from(*bytes)),
            _ => continue,
        };
        let line = wire_map.entry(kind.clone()).or_insert_with(|| WireLine {
            kind: kind.clone(),
            ..WireLine::default()
        });
        match &r.event {
            TraceEvent::MessageSent { .. } => {
                line.msgs += 1;
                line.bytes += bytes;
            }
            TraceEvent::MessageDropped { .. } => {
                line.dropped_msgs += 1;
                line.dropped_bytes += bytes;
            }
            TraceEvent::MessageCorrupted { .. } => {
                line.corrupted_msgs += 1;
                line.corrupted_bytes += bytes;
            }
            TraceEvent::MessageDuplicated { .. } => {
                line.duplicated_msgs += 1;
                line.duplicated_bytes += bytes;
            }
            _ => unreachable!(),
        }
    }

    // Injected duplications are notable but always benign for the
    // trajectory: the extra copy never carries a `MessageSent`, so it
    // can neither orphan nor hang anything. Flag the ones that are not
    // tied to a query here; query-scoped ones are flagged per query.
    for r in records {
        if r.query.is_none() {
            if let TraceEvent::MessageDuplicated { kind, to, .. } = &r.event {
                flagged.push(format!(
                    "{}: {kind} to {to} delivered twice (injected duplication)",
                    r.site
                ));
            }
        }
    }

    // Per-site utilization from the stage spans, plus the queue-wait vs
    // service-time split the bottleneck report is built from.
    let mut sites: BTreeMap<String, SiteUtilization> = BTreeMap::new();
    let mut site_stages: BTreeMap<String, (u64, BTreeMap<&'static str, u64>)> = BTreeMap::new();
    let bucket_us = (end_us / TIMELINE_BUCKETS as u64).max(1);
    for r in records {
        if let Some(spans) = r.event.stage_spans() {
            let busy: u64 = spans
                .iter()
                .filter(|(stage, _)| *stage != QUEUE_STAGE)
                .map(|(_, us)| us)
                .sum();
            let (clones, stages) = site_stages.entry(r.site.clone()).or_default();
            *clones += 1;
            for (stage, us) in spans {
                *stages.entry(stage).or_default() += us;
            }
            let entry = sites
                .entry(r.site.clone())
                .or_insert_with(|| SiteUtilization {
                    site: r.site.clone(),
                    busy_us: 0,
                    timeline: vec![0; TIMELINE_BUCKETS],
                });
            entry.busy_us += busy;
            // Attribute the busy interval [time - busy, time] backwards
            // across the buckets it covers.
            let mut remaining = busy;
            let mut t_end = r.time_us;
            while remaining > 0 {
                let idx = ((t_end.saturating_sub(1)) / bucket_us).min(TIMELINE_BUCKETS as u64 - 1)
                    as usize;
                let bucket_start = idx as u64 * bucket_us;
                let chunk = remaining.min(t_end.saturating_sub(bucket_start)).max(1);
                entry.timeline[idx] += chunk;
                remaining = remaining.saturating_sub(chunk);
                t_end = t_end.saturating_sub(chunk);
                if t_end == 0 {
                    // Clamp anything left over into the first bucket.
                    entry.timeline[0] += remaining;
                    break;
                }
            }
        }
    }

    // Per-site answer-cache accounting, straight from the cache events.
    let mut cache_sites: BTreeMap<String, SiteCacheLine> = BTreeMap::new();
    for r in records {
        let line =
            match &r.event {
                TraceEvent::CacheHit { .. }
                | TraceEvent::CacheMiss { .. }
                | TraceEvent::CacheEvict { .. } => cache_sites
                    .entry(r.site.clone())
                    .or_insert_with(|| SiteCacheLine {
                        site: r.site.clone(),
                        ..SiteCacheLine::default()
                    }),
                _ => continue,
            };
        match &r.event {
            TraceEvent::CacheHit { subsumed, .. } => {
                line.hits += 1;
                if *subsumed {
                    line.subsumed_hits += 1;
                }
            }
            TraceEvent::CacheMiss { .. } => line.misses += 1,
            TraceEvent::CacheEvict { .. } => line.evictions += 1,
            _ => unreachable!(),
        }
    }
    let mut critical_path_served = 0usize;

    // Living-web staleness accounting: per-site mutation counts, a
    // per-document version timeline from the `WebMutation` records, and
    // every `DocFetch` held against it. The doctor sees only the trace,
    // so a visit from superseded content is *flagged* (the chaos
    // oracle, which holds the authoritative schedule, is the one that
    // promotes staleness to a violation).
    let mut staleness_sites: BTreeMap<String, SiteStalenessLine> = BTreeMap::new();
    let mut doc_versions: BTreeMap<&str, Vec<(u64, u64)>> = BTreeMap::new();
    for r in records {
        let TraceEvent::WebMutation {
            op,
            url,
            site_version,
        } = &r.event
        else {
            continue;
        };
        let line = staleness_sites
            .entry(r.site.clone())
            .or_insert_with(|| SiteStalenessLine {
                site: r.site.clone(),
                ..SiteStalenessLine::default()
            });
        match op.as_str() {
            "edit_page" => line.edits += 1,
            "delete_page" => line.deletes += 1,
            "create_page" => line.creates += 1,
            _ => line.other += 1,
        }
        line.final_version = line.final_version.max(*site_version);
        doc_versions
            .entry(url.as_str())
            .or_default()
            .push((r.time_us, *site_version));
    }
    for timeline in doc_versions.values_mut() {
        timeline.sort_unstable();
    }
    let mut superseded_visits = Vec::new();
    let mut dead_links = Vec::new();
    for r in records {
        match &r.event {
            TraceEvent::DocFetch {
                url,
                content_version,
                ..
            } => {
                let Some(timeline) = doc_versions.get(url.as_str()) else {
                    continue;
                };
                let current = timeline
                    .iter()
                    .take_while(|(at, _)| *at < r.time_us)
                    .last()
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                if *content_version < current {
                    superseded_visits.push(SupersededVisit {
                        site: r.site.clone(),
                        url: url.clone(),
                        time_us: r.time_us,
                        saw_version: *content_version,
                        current_version: current,
                    });
                }
            }
            TraceEvent::DeadLink { node, version } => {
                dead_links.push((r.site.clone(), node.clone(), *version));
            }
            _ => {}
        }
    }
    for v in &superseded_visits {
        flagged.push(format!(
            "{}: served {} at t={}us from version {} (current since before \
             the visit: {})",
            v.site, v.url, v.time_us, v.saw_version, v.current_version
        ));
    }
    for (site, node, version) in &dead_links {
        flagged.push(format!(
            "{site}: clone terminated at dead link {node} (deleted at site \
             version {version}) — link rot, completed around"
        ));
    }

    // Per-query diagnosis.
    let mut queries = Vec::new();
    for id in trajectory::query_ids(records) {
        let own: Vec<&TraceRecord> = records
            .iter()
            .filter(|r| r.query.as_ref() == Some(&id))
            .collect();
        let first = own.iter().map(|r| r.time_us).min().unwrap_or(0);
        let last = own.iter().map(|r| r.time_us).max().unwrap_or(0);

        let trajectory = trajectory::reconstruct(records, &id);

        // Stage totals per (site, hop) visit, and overall.
        let mut per_visit: BTreeMap<(String, Option<u32>), u64> = BTreeMap::new();
        let mut per_visit_dom: BTreeMap<(String, Option<u32>), BTreeMap<&'static str, u64>> =
            BTreeMap::new();
        let mut stage_totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for r in &own {
            if let Some(spans) = r.event.stage_spans() {
                let key = (r.site.clone(), r.hop);
                for (stage, us) in spans {
                    *stage_totals.entry(stage).or_default() += us;
                    // Queue wait is attribution, not busy time: it feeds
                    // the totals (so a queue-bound query's dominant
                    // "stage" is honestly queue_wait) but never the
                    // per-visit busy accounting.
                    if stage == QUEUE_STAGE {
                        continue;
                    }
                    *per_visit.entry(key.clone()).or_default() += us;
                    *per_visit_dom
                        .entry(key.clone())
                        .or_default()
                        .entry(stage)
                        .or_default() += us;
                }
            }
        }

        let critical_path: Vec<CriticalHop> = {
            let chain = critical_chain(&trajectory.root);
            let mut hops = Vec::new();
            for visit in chain {
                let key = (visit.site.clone(), Some(visit.hop));
                let dominant = per_visit_dom.get(&key).and_then(|m| {
                    m.iter()
                        .filter(|(_, us)| **us > 0)
                        .max_by_key(|(_, us)| **us)
                        .map(|(s, us)| (*s, *us))
                });
                hops.push(CriticalHop {
                    site: visit.site.clone(),
                    hop: visit.hop,
                    transit_us: visit.received_us.map(|r| r.saturating_sub(visit.sent_us)),
                    busy_us: per_visit.get(&key).copied().unwrap_or(0),
                    dominant_stage: dominant,
                });
            }
            hops
        };

        // A cache hit shortened this query's completion time only if it
        // happened at a (site, hop) on the completion-limiting path.
        let hit_visits: std::collections::BTreeSet<(String, Option<u32>)> = own
            .iter()
            .filter(|r| matches!(&r.event, TraceEvent::CacheHit { .. }))
            .map(|r| (r.site.clone(), r.hop))
            .collect();
        if critical_path
            .iter()
            .any(|h| hit_visits.contains(&(h.site.clone(), Some(h.hop))))
        {
            critical_path_served += 1;
        }

        // Classify in-flight visits: explained by a drop or corruption
        // record (a corrupted frame is a loss through the decode path),
        // or hung.
        let mut drops: Vec<(&TraceRecord, bool)> = own
            .iter()
            .filter(|r| {
                matches!(
                    &r.event,
                    TraceEvent::MessageDropped { kind, .. }
                        | TraceEvent::MessageCorrupted { kind, .. } if kind == "query"
                )
            })
            .map(|r| (*r, false))
            .collect();
        let mut dropped_visits = Vec::new();
        let mut hung_visits = Vec::new();
        for (site, hop, _) in in_flight_visits(&trajectory.root) {
            let explained = drops.iter_mut().find(|(r, used)| {
                if *used {
                    return false;
                }
                match &r.event {
                    TraceEvent::MessageDropped { to, .. }
                    | TraceEvent::MessageCorrupted { to, .. } => {
                        drop_explains(to, r.hop, &site, hop)
                    }
                    _ => false,
                }
            });
            match explained {
                Some((r, used)) => {
                    *used = true;
                    let reason = match &r.event {
                        TraceEvent::MessageDropped { reason, .. } => reason.clone(),
                        TraceEvent::MessageCorrupted { .. } => "corrupted".to_string(),
                        _ => unreachable!(),
                    };
                    dropped_visits.push((site, hop, reason));
                }
                None => hung_visits.push((site, hop)),
            }
        }

        let terminations: Vec<String> = own
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::Termination { reason } => Some(reason.name().to_string()),
                _ => None,
            })
            .collect();
        let expired_nodes: Vec<String> = own
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::EntryExpired { node } => Some(node.clone()),
                _ => None,
            })
            .collect();
        let shed_clones: Vec<u32> = own
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::QueryShed { nodes } => Some(*nodes),
                _ => None,
            })
            .collect();
        let duplicated_deliveries: Vec<(String, String)> = own
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::MessageDuplicated { kind, to, .. } => Some((kind.clone(), to.clone())),
                _ => None,
            })
            .collect();

        let label = format!("{}#{}", id.user, id.query_num);
        for record in &trajectory.orphans {
            anomalies.push(format!(
                "{label}: orphaned send from {} at hop {:?} (t={}us)",
                record.site, record.hop, record.time_us
            ));
        }
        for (site, hop) in &hung_visits {
            anomalies.push(format!(
                "{label}: clone to {site} (hop {hop}) sent but never received, \
                 and no drop record explains it"
            ));
        }
        if terminations.is_empty() {
            anomalies.push(format!("{label}: no termination record — the query hung"));
        }
        for (site, hop, reason) in &dropped_visits {
            flagged.push(format!(
                "{label}: clone to {site} (hop {hop}) dropped in flight ({reason})"
            ));
        }
        for node in &expired_nodes {
            flagged.push(format!("{label}: entry expired for {node} (§7.1 recovery)"));
        }
        for nodes in &shed_clones {
            flagged.push(format!(
                "{label}: clone shed by admission control ({nodes} node(s))"
            ));
        }
        for (kind, to) in &duplicated_deliveries {
            flagged.push(format!(
                "{label}: {kind} to {to} delivered twice (injected duplication)"
            ));
        }

        queries.push(QueryDiagnosis {
            id,
            total_us: last.saturating_sub(first),
            terminations,
            critical_path,
            stage_totals,
            orphans: trajectory.orphans.len(),
            dropped_visits,
            hung_visits,
            expired_nodes,
            shed_clones,
            duplicated_deliveries,
        });
    }

    // The saturated site is the one carrying the most queue wait; a
    // trace with no queueing at all falls back to raw service time.
    let mut bottleneck_sites: Vec<SiteBottleneck> = site_stages
        .into_iter()
        .map(|(site, (clones, stages))| {
            let queue_us = stages.get(QUEUE_STAGE).copied().unwrap_or(0);
            let service_us: u64 = stages
                .iter()
                .filter(|(s, _)| **s != QUEUE_STAGE)
                .map(|(_, us)| *us)
                .sum();
            let dominant_stage = stages
                .iter()
                .filter(|(s, us)| **s != QUEUE_STAGE && **us > 0)
                .max_by_key(|(_, us)| **us)
                .map(|(s, us)| (*s, *us));
            SiteBottleneck {
                site,
                clones,
                queue_us,
                service_us,
                dominant_stage,
            }
        })
        .collect();
    bottleneck_sites.sort_by(|a, b| {
        (b.queue_us, b.service_us, &a.site).cmp(&(a.queue_us, a.service_us, &b.site))
    });

    let cache = CacheReport {
        sites: cache_sites.into_values().collect(),
        critical_path_served,
        queries: queries.len(),
    };

    // The alert timeline, straight from the monitor's trace records.
    let mut alerts: Vec<AlertTimelineEntry> = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::AlertFired {
                rule,
                value_milli,
                threshold_milli,
            } => Some(AlertTimelineEntry {
                time_us: r.time_us,
                rule: rule.clone(),
                fired: true,
                value_milli: *value_milli,
                threshold_milli: *threshold_milli,
            }),
            TraceEvent::AlertResolved { rule, value_milli } => Some(AlertTimelineEntry {
                time_us: r.time_us,
                rule: rule.clone(),
                fired: false,
                value_milli: *value_milli,
                threshold_milli: 0,
            }),
            _ => None,
        })
        .collect();
    alerts.sort_by(|a, b| (a.time_us, &a.rule).cmp(&(b.time_us, &b.rule)));

    Diagnosis {
        queries,
        sites: sites.into_values().collect(),
        bottleneck: BottleneckReport {
            sites: bottleneck_sites,
        },
        cache,
        wire: wire_map.into_values().collect(),
        alerts,
        staleness: StalenessReport {
            sites: staleness_sites.into_values().collect(),
            superseded_visits,
            dead_links,
        },
        anomalies,
        flagged,
        end_us,
    }
}

impl Diagnosis {
    /// Rules whose last transition in the trace is a fire — incidents
    /// still open when the run ended.
    pub fn alerts_still_firing(&self) -> Vec<&str> {
        let mut last: BTreeMap<&str, bool> = BTreeMap::new();
        for a in &self.alerts {
            last.insert(&a.rule, a.fired);
        }
        last.into_iter()
            .filter(|(_, fired)| *fired)
            .map(|(rule, _)| rule)
            .collect()
    }

    /// Renders the full report as plain text. `top` bounds the slowest-
    /// queries section.
    pub fn render_text(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "webdis-doctor: {} quer{} over {}us of trace\n",
            self.queries.len(),
            if self.queries.len() == 1 { "y" } else { "ies" },
            self.end_us
        ));

        // Top-k slowest with dominant stage.
        let mut slowest: Vec<&QueryDiagnosis> = self.queries.iter().collect();
        slowest.sort_by_key(|q| std::cmp::Reverse(q.total_us));
        out.push_str(&format!("\n== slowest queries (top {top}) ==\n"));
        for q in slowest.iter().take(top) {
            let dom = q
                .dominant_stage()
                .map(|(s, us)| format!("dominant stage {s} ({us}us)"))
                .unwrap_or_else(|| "no stage spans".to_string());
            out.push_str(&format!(
                "{}#{}: {}us, {} — terminated: {}\n",
                q.id.user,
                q.id.query_num,
                q.total_us,
                dom,
                if q.terminations.is_empty() {
                    "NEVER".to_string()
                } else {
                    q.terminations.join(", ")
                }
            ));
            for hop in &q.critical_path {
                let transit = hop
                    .transit_us
                    .map(|t| format!("transit {t}us"))
                    .unwrap_or_else(|| "in flight".to_string());
                let stage = hop
                    .dominant_stage
                    .map(|(s, us)| format!(", busy {}us (mostly {s}: {us}us)", hop.busy_us))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "  critical: {} hop {} — {transit}{stage}\n",
                    hop.site, hop.hop
                ));
            }
        }

        // Per-site utilization timeline.
        if !self.sites.is_empty() {
            out.push_str("\n== site utilization (stage-attributed busy time) ==\n");
            let bucket_us = (self.end_us / TIMELINE_BUCKETS as u64).max(1);
            for site in &self.sites {
                let bar: String = site
                    .timeline
                    .iter()
                    .map(|&busy| {
                        let frac = busy as f64 / bucket_us as f64;
                        if frac <= 0.0 {
                            '.'
                        } else if frac < 0.33 {
                            '-'
                        } else if frac < 0.66 {
                            '+'
                        } else {
                            '#'
                        }
                    })
                    .collect();
                let pct = 100.0 * site.busy_us as f64 / self.end_us.max(1) as f64;
                out.push_str(&format!(
                    "{:<24} busy {:>8}us ({pct:5.1}%)  [{bar}]\n",
                    site.site, site.busy_us
                ));
            }
        }

        // Utilization-law bottleneck report.
        out.push_str("\n== bottleneck (queue wait vs service time) ==\n");
        if self.bottleneck.sites.is_empty() {
            out.push_str("no stage spans in trace — nothing to attribute\n");
        } else {
            for b in &self.bottleneck.sites {
                let rho = b.utilization(self.end_us);
                let dom = match b.dominant_stage {
                    Some((stage, us)) => format!("{stage} ({us}us)"),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "{:<24} {:>4} clone(s)  queue {:>8}us (avg {:>6}us)  service {:>8}us \
                     (util {:5.1}%)  dominant: {dom}\n",
                    b.site,
                    b.clones,
                    b.queue_us,
                    b.mean_queue_us(),
                    b.service_us,
                    100.0 * rho,
                ));
            }
            if let Some(sat) = self.bottleneck.saturated() {
                let dom = sat
                    .dominant_stage
                    .map(|(stage, _)| stage)
                    .unwrap_or("queue_wait");
                if sat.queue_us > 0 {
                    out.push_str(&format!(
                        "saturated site: {} — {}us queued against {}us of service \
                         (util {:.1}%); spend capacity on `{dom}`\n",
                        sat.site,
                        sat.queue_us,
                        sat.service_us,
                        100.0 * sat.utilization(self.end_us),
                    ));
                } else {
                    out.push_str(&format!(
                        "no queueing observed — busiest site is {} \
                         (util {:.1}%, dominant stage {dom})\n",
                        sat.site,
                        100.0 * sat.utilization(self.end_us),
                    ));
                }
            }
        }

        // Answer-cache activity (only when the trace recorded any —
        // a cache-off or pre-cache trace skips the section entirely).
        if self.cache.any_activity() {
            out.push_str("\n== answer cache ==\n");
            for line in &self.cache.sites {
                out.push_str(&format!(
                    "{:<24} {:>5} hit(s) ({} subsumed)  {:>5} miss(es)  {:>4} eviction(s)  \
                     hit rate {:5.1}%\n",
                    line.site,
                    line.hits,
                    line.subsumed_hits,
                    line.misses,
                    line.evictions,
                    100.0 * line.hit_rate(),
                ));
            }
            out.push_str(&format!(
                "critical path served from cache: {}/{} quer{} ({:.1}%)\n",
                self.cache.critical_path_served,
                self.cache.queries,
                if self.cache.queries == 1 { "y" } else { "ies" },
                100.0 * self.cache.critical_path_fraction(),
            ));
        }

        // Wire accounting.
        if !self.wire.is_empty() {
            out.push_str("\n== wire bytes per message type ==\n");
            for line in &self.wire {
                out.push_str(&format!(
                    "{:<12} {:>6} msg(s) {:>10} byte(s)",
                    line.kind, line.msgs, line.bytes
                ));
                if line.dropped_msgs > 0 {
                    out.push_str(&format!(
                        "  (+{} dropped, {} byte(s))",
                        line.dropped_msgs, line.dropped_bytes
                    ));
                }
                if line.corrupted_msgs > 0 {
                    out.push_str(&format!(
                        "  (+{} corrupted, {} byte(s))",
                        line.corrupted_msgs, line.corrupted_bytes
                    ));
                }
                if line.duplicated_msgs > 0 {
                    out.push_str(&format!(
                        "  (+{} duplicated, {} byte(s))",
                        line.duplicated_msgs, line.duplicated_bytes
                    ));
                }
                out.push('\n');
            }
        }

        // Living-web staleness (only when the trace saw mutations or
        // dead links — a frozen trace keeps the section out entirely).
        if self.staleness.any_activity() {
            out.push_str("\n== living web ==\n");
            for line in &self.staleness.sites {
                out.push_str(&format!(
                    "{:<24} {:>3} edit(s)  {:>3} delete(s)  {:>3} create(s)  \
                     {:>3} other  final version {}\n",
                    line.site, line.edits, line.deletes, line.creates, line.other,
                    line.final_version
                ));
            }
            if self.staleness.superseded_visits.is_empty() {
                out.push_str("no visit answered from superseded content\n");
            } else {
                for v in &self.staleness.superseded_visits {
                    out.push_str(&format!(
                        "SUPERSEDED: {} served {} at t={}us from version {} \
                         (current: {})\n",
                        v.site, v.url, v.time_us, v.saw_version, v.current_version
                    ));
                }
            }
            for (site, node, version) in &self.staleness.dead_links {
                out.push_str(&format!(
                    "dead link: {site} reached {node} after deletion (site \
                     version {version}) — terminated gracefully\n"
                ));
            }
        }

        // Alert timeline (only when a monitor emitted transitions).
        if !self.alerts.is_empty() {
            out.push_str("\n== alert timeline ==\n");
            for a in &self.alerts {
                if a.fired {
                    out.push_str(&format!(
                        "t={:>10}us  FIRED     {}  (value {} milli, threshold {} milli)\n",
                        a.time_us, a.rule, a.value_milli, a.threshold_milli
                    ));
                } else {
                    out.push_str(&format!(
                        "t={:>10}us  resolved  {}  (value {} milli)\n",
                        a.time_us, a.rule, a.value_milli
                    ));
                }
            }
            let open = self.alerts_still_firing();
            if open.is_empty() {
                out.push_str("all alerts resolved by end of trace\n");
            } else {
                out.push_str(&format!(
                    "STILL FIRING at end of trace: {}\n",
                    open.join(", ")
                ));
            }
        }

        if !self.flagged.is_empty() {
            out.push_str("\n== flagged (explained) ==\n");
            for f in &self.flagged {
                out.push_str(&format!("{f}\n"));
            }
        }
        out.push_str("\n== anomalies ==\n");
        if self.anomalies.is_empty() {
            out.push_str(
                "none — every send was received or accounted for, every query terminated\n",
            );
        } else {
            for a in &self.anomalies {
                out.push_str(&format!("{a}\n"));
            }
        }
        out
    }
}

/// Re-exported for the binary: reconstructs one query's shipping tree.
pub fn reconstruct(records: &[TraceRecord], id: &QueryId) -> Trajectory {
    trajectory::reconstruct(records, id)
}

/// Streams a JSONL trace off disk one line at a time. A long workload
/// run's trace reaches hundreds of megabytes; `read_to_string` would
/// hold the whole text *and* the decoded records simultaneously, while
/// this path only ever holds one line of text alongside the records.
/// Errors carry the 1-based line number, blank lines are skipped (a
/// trailing newline is not a record).
pub fn load_trace(path: &std::path::Path) -> Result<Vec<TraceRecord>, String> {
    use std::io::BufRead;

    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let mut records = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("{path:?}:{}: read error: {e}", idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let record = webdis_trace::json::decode_record(&line)
            .map_err(|e| format!("{path:?}:{}: {e}", idx + 1))?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdis_trace::TermReason;

    fn qid() -> QueryId {
        QueryId {
            user: "alice".into(),
            host: "user.test".into(),
            port: 9900,
            query_num: 1,
        }
    }

    fn rec(t: u64, site: &str, hop: Option<u32>, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time_us: t,
            site: site.into(),
            query: Some(qid()),
            hop,
            event,
        }
    }

    fn sent(t: u64, site: &str, to: &str, hop: u32) -> TraceRecord {
        rec(
            t,
            site,
            Some(hop),
            TraceEvent::QuerySent {
                to_site: to.into(),
                nodes: 1,
            },
        )
    }

    fn recv(t: u64, site: &str, hop: u32) -> TraceRecord {
        rec(t, site, Some(hop), TraceEvent::QueryRecv { nodes: 1 })
    }

    fn spans(t: u64, site: &str, hop: u32, eval_us: u64) -> TraceRecord {
        spans_queued(t, site, hop, eval_us, 0)
    }

    fn spans_queued(t: u64, site: &str, hop: u32, eval_us: u64, queue_us: u64) -> TraceRecord {
        rec(
            t,
            site,
            Some(hop),
            TraceEvent::StageSpans {
                queue_us,
                parse_us: 10,
                log_us: 2,
                cache_us: 0,
                eval_us,
                eval_probe_us: 0,
                eval_scan_us: eval_us,
                build_us: 3,
                forward_us: 5,
            },
        )
    }

    fn terminated(t: u64) -> TraceRecord {
        rec(
            t,
            "user.test",
            None,
            TraceEvent::Termination {
                reason: TermReason::ChtComplete,
            },
        )
    }

    #[test]
    fn dropped_clone_is_flagged_not_anomalous() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            sent(11, "site1.test", "site2.test", 1),
            rec(
                11,
                "site1.test",
                Some(1),
                TraceEvent::MessageDropped {
                    kind: "query".into(),
                    to: "wdqs.site2.test".into(),
                    bytes: 150,
                    reason: "injected".into(),
                },
            ),
            rec(
                500,
                "user.test",
                None,
                TraceEvent::EntryExpired {
                    node: "http://site2.test/doc0.html".into(),
                },
            ),
            rec(
                501,
                "user.test",
                None,
                TraceEvent::Termination {
                    reason: TermReason::Expired,
                },
            ),
        ];
        let d = diagnose(&records);
        assert!(d.anomalies.is_empty(), "{:?}", d.anomalies);
        assert_eq!(d.queries[0].dropped_visits.len(), 1);
        assert_eq!(d.queries[0].orphans, 0);
        assert!(d
            .flagged
            .iter()
            .any(|f| f.contains("dropped in flight (injected)")));
        assert!(d.flagged.iter().any(|f| f.contains("entry expired")));
    }

    #[test]
    fn corrupted_clone_is_flagged_not_anomalous() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            sent(11, "site1.test", "site2.test", 1),
            rec(
                11,
                "site1.test",
                Some(1),
                TraceEvent::MessageCorrupted {
                    kind: "query".into(),
                    to: "wdqs.site2.test".into(),
                    bytes: 150,
                },
            ),
            rec(
                501,
                "user.test",
                None,
                TraceEvent::Termination {
                    reason: TermReason::Expired,
                },
            ),
        ];
        let d = diagnose(&records);
        assert!(d.anomalies.is_empty(), "{:?}", d.anomalies);
        assert_eq!(
            d.queries[0].dropped_visits,
            vec![("site2.test".into(), 1, "corrupted".into())]
        );
        assert!(d.queries[0].hung_visits.is_empty());
        assert!(d
            .flagged
            .iter()
            .any(|f| f.contains("dropped in flight (corrupted)")));
    }

    #[test]
    fn duplicated_delivery_is_flagged_never_anomalous() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            rec(
                20,
                "site1.test",
                None,
                TraceEvent::MessageDuplicated {
                    kind: "report".into(),
                    to: "user.test".into(),
                    bytes: 90,
                },
            ),
            terminated(30),
        ];
        let d = diagnose(&records);
        assert!(d.anomalies.is_empty(), "{:?}", d.anomalies);
        assert_eq!(
            d.queries[0].duplicated_deliveries,
            vec![("report".into(), "user.test".into())]
        );
        assert!(d
            .flagged
            .iter()
            .any(|f| f.contains("report to user.test delivered twice")));
        let query_wire = d.wire.iter().find(|w| w.kind == "report").unwrap();
        assert_eq!(
            (query_wire.duplicated_msgs, query_wire.duplicated_bytes),
            (1, 90)
        );
    }

    #[test]
    fn unexplained_loss_and_missing_termination_are_anomalies() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            sent(11, "site1.test", "site2.test", 1),
            // No drop record, no receive, no termination.
        ];
        let d = diagnose(&records);
        assert_eq!(d.queries[0].hung_visits, vec![("site2.test".into(), 1)]);
        assert!(
            d.anomalies.iter().any(|a| a.contains("never received")),
            "{:?}",
            d.anomalies
        );
        assert!(d.anomalies.iter().any(|a| a.contains("no termination")));
    }

    #[test]
    fn stage_totals_and_dominant_stage_aggregate_across_visits() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            spans(40, "site1.test", 0, 100),
            sent(41, "site1.test", "site2.test", 1),
            recv(50, "site2.test", 1),
            spans(90, "site2.test", 1, 300),
            terminated(120),
        ];
        let d = diagnose(&records);
        let q = &d.queries[0];
        assert_eq!(q.stage_totals["eval"], 400);
        assert_eq!(q.stage_totals["parse"], 20);
        assert_eq!(q.dominant_stage(), Some(("eval", 400)));
        // Critical path ends at site2 with its own dominant stage.
        let last = q.critical_path.last().unwrap();
        assert_eq!(last.site, "site2.test");
        assert_eq!(last.transit_us, Some(9));
        assert_eq!(last.dominant_stage, Some(("eval", 300)));
        // Site utilization saw both sites.
        assert_eq!(d.sites.len(), 2);
        assert!(d
            .sites
            .iter()
            .any(|s| s.site == "site1.test" && s.busy_us == 120));
    }

    #[test]
    fn wire_accounting_sums_per_kind() {
        let records = vec![
            rec(
                1,
                "user.test",
                Some(0),
                TraceEvent::MessageSent {
                    kind: "query".into(),
                    to: "wdqs.site1.test".into(),
                    bytes: 200,
                },
            ),
            rec(
                2,
                "site1.test",
                None,
                TraceEvent::MessageSent {
                    kind: "report".into(),
                    to: "user.test".into(),
                    bytes: 90,
                },
            ),
            rec(
                3,
                "site1.test",
                Some(1),
                TraceEvent::MessageDropped {
                    kind: "query".into(),
                    to: "wdqs.site2.test".into(),
                    bytes: 210,
                    reason: "random".into(),
                },
            ),
            terminated(10),
        ];
        let d = diagnose(&records);
        let query = d.wire.iter().find(|w| w.kind == "query").unwrap();
        assert_eq!((query.msgs, query.bytes), (1, 200));
        assert_eq!((query.dropped_msgs, query.dropped_bytes), (1, 210));
        let report = d.wire.iter().find(|w| w.kind == "report").unwrap();
        assert_eq!((report.msgs, report.bytes), (1, 90));
    }

    /// The t12 acceptance shape: a sim run with injected drops must
    /// produce expired/shed flags and *zero* false orphans or hangs.
    #[test]
    fn injected_drop_run_has_zero_false_orphans() {
        let (collector, tracer) = webdis_trace::TraceHandle::collecting(16_384);
        let cfg = webdis_core::EngineConfig {
            expiry: Some(webdis_core::ExpiryPolicy::with_timeout(400_000)),
            tracer,
            ..webdis_core::EngineConfig::default()
        };
        let sim = webdis_sim::SimConfig {
            drop_rate: 0.1,
            seed: 5,
            ..webdis_sim::SimConfig::default()
        };
        let outcome = webdis_core::run_query_sim(
            std::sync::Arc::new(webdis_web::figures::campus()),
            webdis_web::figures::CAMPUS_QUERY,
            cfg,
            sim,
        )
        .unwrap();
        assert!(outcome.complete, "expiry must conclude the query");
        let records = collector.snapshot();
        let d = diagnose(&records);
        assert!(
            d.anomalies.is_empty(),
            "injected drops must never read as orphans or hangs: {:?}",
            d.anomalies
        );
        // The run did lose something, and the doctor saw it.
        let dropped: usize = d.queries.iter().map(|q| q.dropped_visits.len()).sum();
        let drops_in_trace = records
            .iter()
            .filter(
                |r| matches!(&r.event, TraceEvent::MessageDropped { kind, .. } if kind == "query"),
            )
            .count();
        assert_eq!(
            dropped, drops_in_trace,
            "every dropped query clone is matched to its in-flight visit"
        );
        let text = d.render_text(5);
        assert!(text.contains("anomalies"));
        assert!(text.contains("none — every send"));
    }

    #[test]
    fn bottleneck_report_names_the_queue_heavy_site() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            spans_queued(40, "site1.test", 0, 100, 5),
            sent(41, "site1.test", "site2.test", 1),
            recv(50, "site2.test", 1),
            spans_queued(90, "site2.test", 1, 50, 900),
            terminated(120),
        ];
        let d = diagnose(&records);
        let sat = d.bottleneck.saturated().expect("spans present");
        assert_eq!(sat.site, "site2.test");
        assert_eq!(sat.queue_us, 900);
        assert_eq!(sat.service_us, 70);
        assert_eq!(sat.dominant_stage, Some(("eval", 50)));
        // Queue wait counts toward query stage totals but never toward
        // site busy time.
        assert_eq!(d.queries[0].stage_totals["queue_wait"], 905);
        let site2 = d.sites.iter().find(|s| s.site == "site2.test").unwrap();
        assert_eq!(site2.busy_us, 70);
        let text = d.render_text(5);
        assert!(
            text.contains("saturated site: site2.test"),
            "render must name the saturated site:\n{text}"
        );
        assert!(text.contains("spend capacity on `eval`"));
    }

    #[test]
    fn bottleneck_report_survives_traces_with_no_spans() {
        // A trace with zero completed queries (and zero stage spans)
        // must render without panicking.
        let records = vec![sent(0, "user.test", "site1.test", 0)];
        let d = diagnose(&records);
        assert!(d.bottleneck.sites.is_empty());
        assert!(d.bottleneck.saturated().is_none());
        let text = d.render_text(5);
        assert!(text.contains("no stage spans in trace"));

        // Fully empty trace too.
        let d = diagnose(&[]);
        assert!(d.bottleneck.saturated().is_none());
        d.render_text(5);
    }

    #[test]
    fn cache_report_counts_sites_and_critical_path_hits() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            rec(
                11,
                "site1.test",
                Some(0),
                TraceEvent::CacheMiss {
                    node: "http://site1.test/doc0.html".into(),
                },
            ),
            spans(40, "site1.test", 0, 100),
            sent(41, "site1.test", "site2.test", 1),
            recv(50, "site2.test", 1),
            // The hit on the deepest visit — the critical path ends here.
            rec(
                51,
                "site2.test",
                Some(1),
                TraceEvent::CacheHit {
                    node: "http://site2.test/doc0.html".into(),
                    subsumed: true,
                    rows: 3,
                },
            ),
            rec(
                52,
                "site2.test",
                Some(1),
                TraceEvent::CacheEvict {
                    node: "http://site2.test/doc9.html".into(),
                    bytes: 120,
                    resident_bytes: 480,
                },
            ),
            spans(90, "site2.test", 1, 5),
            terminated(120),
        ];
        let d = diagnose(&records);
        assert!(d.cache.any_activity());
        let s1 = d
            .cache
            .sites
            .iter()
            .find(|s| s.site == "site1.test")
            .unwrap();
        assert_eq!((s1.hits, s1.misses, s1.evictions), (0, 1, 0));
        let s2 = d
            .cache
            .sites
            .iter()
            .find(|s| s.site == "site2.test")
            .unwrap();
        assert_eq!((s2.hits, s2.subsumed_hits, s2.evictions), (1, 1, 1));
        assert_eq!(s2.hit_rate(), 1.0);
        // The hit sits on the critical path (site2 is the last hop).
        assert_eq!(d.cache.critical_path_served, 1);
        assert_eq!(d.cache.queries, 1);
        let text = d.render_text(5);
        assert!(text.contains("== answer cache =="), "{text}");
        assert!(
            text.contains("critical path served from cache: 1/1 query (100.0%)"),
            "{text}"
        );
    }

    #[test]
    fn cache_hit_off_the_critical_path_does_not_count() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            // Two children: site2 finishes last (critical), site3 is the
            // fast branch and the only one served from cache.
            sent(11, "site1.test", "site2.test", 1),
            sent(11, "site1.test", "site3.test", 1),
            recv(20, "site3.test", 1),
            rec(
                21,
                "site3.test",
                Some(1),
                TraceEvent::CacheHit {
                    node: "http://site3.test/doc0.html".into(),
                    subsumed: false,
                    rows: 1,
                },
            ),
            recv(500, "site2.test", 1),
            terminated(600),
        ];
        let d = diagnose(&records);
        assert_eq!(d.cache.sites.len(), 1);
        assert_eq!(d.cache.critical_path_served, 0, "hit was off-path");
        assert_eq!(d.cache.queries, 1);
    }

    #[test]
    fn cache_report_is_empty_for_traces_without_cache_events() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            spans(40, "site1.test", 0, 100),
            terminated(60),
        ];
        let d = diagnose(&records);
        assert!(!d.cache.any_activity());
        assert_eq!(d.cache.critical_path_served, 0);
        let text = d.render_text(5);
        assert!(
            !text.contains("answer cache"),
            "cache-free trace must not render a cache section:\n{text}"
        );
    }

    #[test]
    fn alert_timeline_orders_transitions_and_names_open_incidents() {
        let alert = |t: u64, event: TraceEvent| TraceRecord {
            time_us: t,
            site: "monitor".into(),
            query: None,
            hop: None,
            event,
        };
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            terminated(120),
            alert(
                200_000,
                TraceEvent::AlertFired {
                    rule: "shed_rate_burn".into(),
                    value_milli: 40_000,
                    threshold_milli: 1_000,
                },
            ),
            alert(
                400_000,
                TraceEvent::AlertResolved {
                    rule: "shed_rate_burn".into(),
                    value_milli: 0,
                },
            ),
            alert(
                500_000,
                TraceEvent::AlertFired {
                    rule: "queue_depth_high".into(),
                    value_milli: 70_000_000,
                    threshold_milli: 64_000,
                },
            ),
        ];
        let d = diagnose(&records);
        assert_eq!(d.alerts.len(), 3);
        assert!(d.alerts[0].fired && d.alerts[0].rule == "shed_rate_burn");
        assert!(!d.alerts[1].fired);
        assert_eq!(d.alerts_still_firing(), vec!["queue_depth_high"]);
        let text = d.render_text(5);
        assert!(text.contains("== alert timeline =="), "{text}");
        assert!(text.contains("FIRED     shed_rate_burn"), "{text}");
        assert!(text.contains("resolved  shed_rate_burn"), "{text}");
        assert!(
            text.contains("STILL FIRING at end of trace: queue_depth_high"),
            "{text}"
        );
        // Monitor-free traces keep the section out entirely.
        let quiet = diagnose(&[sent(0, "user.test", "site1.test", 0), terminated(10)]);
        assert!(quiet.alerts.is_empty());
        assert!(!quiet.render_text(5).contains("alert timeline"));
    }

    #[test]
    fn streaming_loader_handles_multi_megabyte_traces() {
        use std::io::Write;

        // ~80k records of realistic size lands well past 2 MB on disk —
        // enough to make an accidental read_to_string regression visible
        // in memory profiles, small enough for a unit test.
        let dir = std::env::temp_dir().join(format!("webdis-doctor-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big-trace.jsonl");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
            for i in 0..80_000u64 {
                let r = sent(i, "user.test", &format!("site{}.test", i % 7), 0);
                writeln!(f, "{}", webdis_trace::json::encode_record(&r)).unwrap();
                if i % 1000 == 0 {
                    writeln!(f).unwrap(); // blank lines are skipped
                }
            }
        }
        assert!(
            std::fs::metadata(&path).unwrap().len() > 2_000_000,
            "synthetic trace should be multi-MB"
        );
        let records = load_trace(&path).expect("stream decode");
        assert_eq!(records.len(), 80_000);
        assert_eq!(records[79_999].time_us, 79_999);

        // A corrupt line reports its 1-based line number.
        let bad = dir.join("bad-trace.jsonl");
        std::fs::write(&bad, "{\"broken\n").unwrap();
        let err = load_trace(&bad).unwrap_err();
        assert!(err.contains(":1:"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    fn mutation(t: u64, site: &str, op: &str, url: &str, version: u64) -> TraceRecord {
        TraceRecord {
            time_us: t,
            site: site.into(),
            query: None,
            hop: None,
            event: TraceEvent::WebMutation {
                op: op.into(),
                url: url.into(),
                site_version: version,
            },
        }
    }

    fn fetch(t: u64, site: &str, url: &str, version: u64) -> TraceRecord {
        rec(
            t,
            site,
            Some(0),
            TraceEvent::DocFetch {
                url: url.into(),
                cache_hit: true,
                content_version: version,
            },
        )
    }

    #[test]
    fn staleness_report_counts_mutations_and_superseded_visits() {
        let url = "http://site1.test/doc0.html";
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            // Fresh visit before the edit: version 0 is current.
            fetch(20, "site1.test", url, 0),
            mutation(100, "site1.test", "edit_page", url, 1),
            mutation(150, "site1.test", "delete_page", "http://site1.test/doc1.html", 2),
            // A visit *after* the edit served from the pre-edit build.
            fetch(200, "site1.test", url, 0),
            terminated(300),
        ];
        let d = diagnose(&records);
        assert!(d.staleness.any_activity());
        let line = &d.staleness.sites[0];
        assert_eq!((line.edits, line.deletes, line.final_version), (1, 1, 2));
        assert_eq!(
            d.staleness.superseded_visits,
            vec![SupersededVisit {
                site: "site1.test".into(),
                url: url.into(),
                time_us: 200,
                saw_version: 0,
                current_version: 1,
            }]
        );
        // Superseded visits are flagged, never anomalies: only the
        // chaos oracle holds the authoritative schedule.
        assert!(d.anomalies.is_empty(), "{:?}", d.anomalies);
        assert!(d.flagged.iter().any(|f| f.contains("served")));
        let text = d.render_text(5);
        assert!(text.contains("== living web =="), "{text}");
        assert!(text.contains("SUPERSEDED"), "{text}");
    }

    #[test]
    fn boundary_fetch_at_the_mutation_instant_is_not_superseded() {
        let url = "http://site1.test/doc0.html";
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            mutation(100, "site1.test", "edit_page", url, 1),
            // Same instant as the mutation: either version is legal.
            fetch(100, "site1.test", url, 0),
            terminated(300),
        ];
        let d = diagnose(&records);
        assert!(d.staleness.superseded_visits.is_empty());
    }

    #[test]
    fn dead_link_termination_is_flagged_never_anomalous() {
        let node = "http://site1.test/doc1.html";
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            mutation(50, "site1.test", "delete_page", node, 1),
            rec(
                60,
                "site1.test",
                Some(0),
                TraceEvent::DeadLink {
                    node: node.into(),
                    version: 1,
                },
            ),
            terminated(100),
        ];
        let d = diagnose(&records);
        assert!(d.anomalies.is_empty(), "{:?}", d.anomalies);
        assert_eq!(
            d.staleness.dead_links,
            vec![("site1.test".into(), node.into(), 1)]
        );
        assert!(d.flagged.iter().any(|f| f.contains("link rot")));
        let text = d.render_text(5);
        assert!(text.contains("terminated gracefully"), "{text}");
    }

    #[test]
    fn frozen_traces_render_no_living_web_section() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            fetch(20, "site1.test", "http://site1.test/doc0.html", 0),
            terminated(60),
        ];
        let d = diagnose(&records);
        assert!(!d.staleness.any_activity());
        let text = d.render_text(5);
        assert!(
            !text.contains("living web"),
            "frozen trace must not render a staleness section:\n{text}"
        );
    }

    #[test]
    fn bottleneck_report_falls_back_to_service_time_without_queueing() {
        let records = vec![
            sent(0, "user.test", "site1.test", 0),
            recv(10, "site1.test", 0),
            spans(40, "site1.test", 0, 300),
            terminated(60),
        ];
        let d = diagnose(&records);
        let sat = d.bottleneck.saturated().unwrap();
        assert_eq!(sat.site, "site1.test");
        assert_eq!(sat.queue_us, 0);
        let text = d.render_text(5);
        assert!(text.contains("no queueing observed"), "{text}");
    }
}
