//! `webdis-doctor --live`: triage a *running* cluster instead of a
//! finished trace.
//!
//! Every TCP daemon serves `/metrics` (Prometheus text) and — when the
//! engine runs with a monitor — `/status` (the JSON in-flight snapshot)
//! on its admin socket. This module polls both over plain HTTP/1.0 and
//! renders the operator view: queries currently in flight with their
//! site/stage/age, the rules currently firing, and where the fleet's
//! processing time is going. `--live-smoke` drives the whole loop
//! against an in-process cluster, which is what CI runs.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use webdis_core::StatusSnapshot;

/// One denominator of the stage-share table: a `stage_us.*` histogram's
/// exported `_sum` series.
const STAGE_SUM_PREFIX: &str = "webdis_stage_us_";

/// The fleet-wide stage histograms the engine registers. Per-site
/// variants append the sanitized host (`stage_us.eval.a.test` →
/// `webdis_stage_us_eval_a_test`), which underscore-sanitizing makes
/// indistinguishable from a stage name by shape — so the live view
/// matches against this closed set instead.
const FLEET_STAGES: &[&str] = &[
    "queue_wait",
    "parse",
    "log",
    "cache_lookup",
    "eval",
    "eval_probe",
    "eval_scan",
    "build",
    "forward",
];

/// Fetches `path` from an admin socket with one blocking HTTP/1.0 GET.
/// Returns the response body; errors name the address and path.
pub fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("{addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr}: no address"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("{addr}: {e}"))?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").map_err(|e| format!("send {addr}{path}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read {addr}{path}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}{path}: malformed HTTP response"))?;
    let status_line = head.lines().next().unwrap_or_default();
    if !status_line.contains(" 200 ") {
        return Err(format!("{addr}{path}: {status_line}"));
    }
    Ok(body.to_string())
}

/// The plain (un-suffixed) numeric series of a Prometheus text body:
/// counters, gauges, and histogram `_sum`/`_count` lines. Enough for
/// the live view; full histogram decoding stays with the offline tools.
pub fn parse_metrics(body: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.contains('{') {
            continue;
        }
        if let Some((name, value)) = line.split_once(' ') {
            if let Ok(v) = value.trim().parse::<u64>() {
                out.insert(name.to_string(), v);
            }
        }
    }
    out
}

/// One poll of a daemon: its live status (when the route exists) and
/// its flat metric series.
#[derive(Debug, Clone)]
pub struct LiveSample {
    /// The `/status` snapshot; `None` when the daemon runs unmonitored
    /// (the route 404s).
    pub status: Option<StatusSnapshot>,
    /// Flat series parsed from `/metrics`.
    pub metrics: BTreeMap<String, u64>,
}

/// Polls one daemon's admin socket once.
pub fn sample(addr: &str) -> Result<LiveSample, String> {
    let metrics = parse_metrics(&http_get(addr, "/metrics")?);
    let status = match http_get(addr, "/status") {
        Ok(body) => Some(StatusSnapshot::from_json(&body)?),
        Err(err) if err.contains("404") => None,
        Err(err) => return Err(err),
    };
    Ok(LiveSample { status, metrics })
}

/// Renders one poll as the operator view.
pub fn render(sample: &LiveSample) -> String {
    let mut out = String::new();
    match &sample.status {
        None => out.push_str("status: unavailable (daemon runs without a monitor)\n"),
        Some(s) => {
            out.push_str(&format!(
                "t={}us  windows closed: {}  admitted: {}  retired: {}  in flight: {}\n",
                s.now_us,
                s.windows_closed,
                s.admitted,
                s.retired,
                s.inflight.len()
            ));
            if s.active_alerts.is_empty() {
                out.push_str("alerts: none firing\n");
            } else {
                out.push_str(&format!("alerts FIRING: {}\n", s.active_alerts.join(", ")));
            }
            if !s.inflight.is_empty() {
                out.push_str("\n  query                     age_us      at site               stage hops clones fanout\n");
                for q in &s.inflight {
                    out.push_str(&format!(
                        "  {:<24} {:>9}  {:<20} {:>5} {:>4} {:>6} {:>6}\n",
                        format!("{}#{}", q.user, q.query_num),
                        q.age_us,
                        q.site,
                        q.stage,
                        q.hops,
                        q.clones_recv,
                        q.fanout
                    ));
                }
            }
        }
    }
    // Fleet stage shares from the exported stage_us sums.
    let stage_sums: Vec<(&str, u64)> = sample
        .metrics
        .iter()
        .filter_map(|(name, v)| {
            let rest = name.strip_prefix(STAGE_SUM_PREFIX)?;
            let stage = rest.strip_suffix("_sum")?;
            if !FLEET_STAGES.contains(&stage) {
                return None;
            }
            Some((stage, *v))
        })
        .collect();
    let total: u64 = stage_sums.iter().map(|(_, v)| v).sum();
    if total > 0 {
        out.push_str("\nfleet stage shares:\n");
        for (stage, us) in &stage_sums {
            let pct = (100 * us).checked_div(total).unwrap_or(0);
            out.push_str(&format!("  {stage:<12} {us:>10}us ({pct:>3}%)\n"));
        }
    }
    for key in ["webdis_query_recv", "webdis_query_shed", "webdis_cache_hit"] {
        if let Some(v) = sample.metrics.get(key) {
            out.push_str(&format!("{key} {v}\n"));
        }
    }
    out
}

/// Polls `addr` `polls` times, `interval` apart, rendering each sample.
/// Returns the concatenated reports (the binary prints as it goes, so
/// it streams its own copies; this return value is for tests).
pub fn watch(
    addr: &str,
    polls: usize,
    interval: Duration,
    mut emit: impl FnMut(&str),
) -> Result<(), String> {
    for i in 0..polls {
        let s = sample(addr)?;
        let mut text = format!("-- poll {}/{} against {addr} --\n", i + 1, polls);
        text.push_str(&render(&s));
        emit(&text);
        if i + 1 < polls {
            std::thread::sleep(interval);
        }
    }
    Ok(())
}

/// The CI smoke: brings up a monitored loopback cluster, runs one real
/// query through it, polls the first daemon's admin socket live, and
/// checks the poll saw the run. Returns the rendered polls.
pub fn live_smoke() -> Result<String, String> {
    use std::sync::Arc;
    use std::time::Instant;

    let web = Arc::new(webdis_web::figures::campus());
    let (_collector, tracer) = webdis_trace::TraceHandle::collecting(65_536);
    let monitor = webdis_core::MonitorHandle::with_defaults(tracer.clone());
    let cfg = webdis_core::EngineConfig {
        tracer,
        monitor: Some(monitor),
        ..webdis_core::EngineConfig::default()
    };
    let cluster = webdis_core::TcpCluster::start(
        Arc::clone(&web),
        &cfg,
        webdis_core::TcpFaultPlan::default(),
    );
    let mut client =
        webdis_core::ClientProcess::new("smoke", cluster.user_site().clone(), cfg.clone());
    let mut net = cluster.user_net();
    client
        .submit_disql(&mut net, webdis_web::figures::CAMPUS_QUERY)
        .map_err(|e| format!("smoke query: {e:?}"))?;
    let start = Instant::now();
    while !client.all_complete() && start.elapsed() < Duration::from_secs(30) {
        if let Some(msg) = cluster.recv_timeout(Duration::from_millis(20)) {
            client.on_message(&mut net, msg);
        }
    }
    if !client.all_complete() {
        return Err("smoke query did not complete within 30s".into());
    }

    let (_, addr) = cluster.metrics_addrs()[0];
    let mut report = String::new();
    watch(&addr.to_string(), 2, Duration::from_millis(60), |text| {
        report.push_str(text)
    })?;
    cluster.shutdown();

    let last = sample_check(&report)?;
    Ok(format!("{report}\nlive smoke OK: {last}\n"))
}

/// The smoke's acceptance: the live view must have seen the admitted
/// query retire and the fleet's stage time.
fn sample_check(report: &str) -> Result<String, String> {
    if !report.contains("admitted: 1") || !report.contains("retired: 1") {
        return Err(format!(
            "live view never saw the query admitted and retired:\n{report}"
        ));
    }
    if !report.contains("fleet stage shares") {
        return Err(format!("live view carried no stage attribution:\n{report}"));
    }
    Ok("status reflected admit/retire and stage shares".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_metrics_keeps_plain_series_and_skips_labels() {
        let body = "# HELP webdis_query_recv x\n# TYPE webdis_query_recv counter\n\
                    webdis_query_recv 7\n\
                    webdis_hop_latency_us_bucket{le=\"1\"} 3\n\
                    webdis_hop_latency_us_sum 41\n\
                    webdis_up 1\n";
        let m = parse_metrics(body);
        assert_eq!(m.get("webdis_query_recv"), Some(&7));
        assert_eq!(m.get("webdis_hop_latency_us_sum"), Some(&41));
        assert_eq!(m.get("webdis_up"), Some(&1));
        assert!(!m.keys().any(|k| k.contains("bucket")));
    }

    #[test]
    fn render_names_firing_alerts_and_inflight_queries() {
        let mut metrics = BTreeMap::new();
        metrics.insert("webdis_stage_us_eval_sum".to_string(), 900u64);
        metrics.insert("webdis_stage_us_queue_wait_sum".to_string(), 100u64);
        metrics.insert("webdis_query_shed".to_string(), 4u64);
        let sample = LiveSample {
            status: Some(StatusSnapshot {
                now_us: 1_000_000,
                windows_closed: 10,
                admitted: 3,
                retired: 2,
                active_alerts: vec!["shed_rate_burn".into()],
                inflight: vec![webdis_core::InflightStatus {
                    user: "alice".into(),
                    host: "user.test".into(),
                    port: 9900,
                    query_num: 7,
                    submitted_us: 400_000,
                    age_us: 600_000,
                    site: "site2.test".into(),
                    stage: 3,
                    hops: 2,
                    clones_recv: 5,
                    fanout: 4,
                }],
            }),
            metrics,
        };
        let text = render(&sample);
        assert!(text.contains("alerts FIRING: shed_rate_burn"), "{text}");
        assert!(text.contains("alice#7"), "{text}");
        assert!(text.contains("site2.test"), "{text}");
        assert!(text.contains("eval"), "{text}");
        assert!(text.contains("90%"), "{text}");
        assert!(text.contains("webdis_query_shed 4"), "{text}");
    }

    #[test]
    fn live_smoke_drives_a_monitored_cluster_end_to_end() {
        let report = live_smoke().expect("live smoke");
        assert!(report.contains("live smoke OK"), "{report}");
        assert!(report.contains("poll 2/2"), "{report}");
    }
}
