//! End-to-end Criterion benchmarks: a full distributed query execution
//! over the simulated network, for both engines and several web sizes.
//! These measure wall-clock cost of the *simulation* (engine CPU work:
//! parsing, evaluation, codec, scheduling), complementing the
//! virtual-time latency numbers of experiment T6.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use webdis_core::{run_datashipping_sim, run_query_sim, EngineConfig};
use webdis_sim::SimConfig;
use webdis_web::{generate, WebGenConfig};

const QUERY: &str = r#"
    select d.url, d.title
    from document d such that "http://site0.test/doc0.html" (L|G)* d
    where d.title contains "needle"
"#;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    for sites in [4usize, 16] {
        let web = Arc::new(generate(&WebGenConfig {
            sites,
            docs_per_site: 4,
            filler_words: 200,
            seed: 5,
            ..WebGenConfig::default()
        }));
        group.bench_with_input(BenchmarkId::new("query_shipping", sites), &web, |b, web| {
            b.iter(|| {
                let outcome = run_query_sim(
                    Arc::clone(black_box(web)),
                    QUERY,
                    EngineConfig::default(),
                    SimConfig::default(),
                )
                .unwrap();
                assert!(outcome.complete);
                outcome.total_rows()
            });
        });
        group.bench_with_input(BenchmarkId::new("data_shipping", sites), &web, |b, web| {
            b.iter(|| {
                let outcome =
                    run_datashipping_sim(Arc::clone(black_box(web)), QUERY, SimConfig::default())
                        .unwrap();
                assert!(outcome.complete);
                outcome.total_rows()
            });
        });
    }
    group.finish();
}

fn bench_campus(c: &mut Criterion) {
    let mut group = c.benchmark_group("campus");
    group.sample_size(30);
    let web = Arc::new(webdis_web::figures::campus());
    group.bench_function("section5_sample_query", |b| {
        b.iter(|| {
            let outcome = run_query_sim(
                Arc::clone(black_box(&web)),
                webdis_web::figures::CAMPUS_QUERY,
                EngineConfig::default(),
                SimConfig::default(),
            )
            .unwrap();
            assert_eq!(outcome.rows_of_stage(1).len(), 3);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_campus);
criterion_main!(benches);
