//! Criterion microbenchmarks for the engine's hot paths: PRE operations,
//! HTML parsing, virtual-relation construction, node-query evaluation,
//! log-table checks and the wire codec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use webdis_model::{LinkType, Url};
use webdis_net::{encode_message, CloneState, Message, QueryClone, QueryId, Wire};
use webdis_pre::{check_subsumption, contains, Dfa};
use webdis_rel::NodeDb;
use webdis_web::{generate, PageBuilder, WebGenConfig};

fn sample_html(links: usize, words: usize) -> String {
    let mut page = PageBuilder::new("A benchmark document about needles");
    let mut body = String::new();
    for w in 0..words {
        if w > 0 {
            body.push(' ');
        }
        body.push_str(["alpha", "bravo", "charlie", "delta"][w % 4]);
    }
    page = page.para(&body).hr();
    for i in 0..links {
        page = page.link(&format!("http://site{}.test/doc{i}.html", i % 7), "ref");
    }
    page.build()
}

fn bench_pre(c: &mut Criterion) {
    let mut group = c.benchmark_group("pre");
    let texts = ["N|G·L*4", "(G|L)*", "G·(L*3)·(G|I)·L*2"];
    for text in texts {
        group.bench_with_input(BenchmarkId::new("parse", text), text, |b, t| {
            b.iter(|| webdis_pre::parse(black_box(t)).unwrap());
        });
    }
    let pre = webdis_pre::parse("G·(L*3)·(G|I)·L*2").unwrap();
    group.bench_function("derivative_walk", |b| {
        b.iter(|| {
            let mut cur = black_box(&pre).clone();
            for t in [
                LinkType::Global,
                LinkType::Local,
                LinkType::Local,
                LinkType::Global,
            ] {
                cur = cur.deriv(t);
            }
            cur
        });
    });
    group.bench_function("nullable_and_first", |b| {
        b.iter(|| (black_box(&pre).nullable(), black_box(&pre).first()));
    });
    let a = webdis_pre::parse("L*2·G").unwrap();
    let bb = webdis_pre::parse("L*4·G").unwrap();
    group.bench_function("subsumption_check", |b| {
        b.iter(|| check_subsumption(black_box(&a), black_box(&bb)));
    });
    group.bench_function("nfa_containment", |b| {
        b.iter(|| contains(black_box(&a), black_box(&bb)));
    });
    group.bench_function("dfa_compile", |b| {
        b.iter(|| Dfa::compile(black_box(&pre)));
    });
    group.finish();
}

fn bench_html(c: &mut Criterion) {
    let mut group = c.benchmark_group("html");
    for (label, links, words) in [
        ("small", 5, 100),
        ("medium", 25, 1000),
        ("large", 100, 8000),
    ] {
        let html = sample_html(links, words);
        group.throughput(criterion::Throughput::Bytes(html.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", label), &html, |b, h| {
            b.iter(|| webdis_html::parse_html(black_box(h)));
        });
    }
    group.finish();
}

fn bench_rel(c: &mut Criterion) {
    let mut group = c.benchmark_group("rel");
    let html = sample_html(25, 1000);
    let parsed = webdis_html::parse_html(&html);
    let url = Url::parse("http://site0.test/doc0.html").unwrap();
    group.bench_function("node_db_build", |b| {
        b.iter(|| NodeDb::build(black_box(&url), black_box(&parsed)));
    });

    let db = NodeDb::build(&url, &parsed);
    let query = webdis_disql::parse_disql(
        r#"select a.base, a.href
           from document d such that "http://site0.test/doc0.html" L* d
                anchor a
           where a.ltype = "G" and d.title contains "needle""#,
    )
    .unwrap();
    let nq = &query.stages[0].query;
    group.bench_function("eval_node_query", |b| {
        b.iter(|| webdis_rel::eval_node_query(black_box(&db), black_box(nq)).unwrap());
    });
    group.finish();
}

fn bench_logtable(c: &mut Criterion) {
    use webdis_core::{LogMode, LogTable};
    let mut group = c.benchmark_group("logtable");
    let id = QueryId {
        user: "b".into(),
        host: "h".into(),
        port: 1,
        query_num: 1,
    };
    let states: Vec<CloneState> = (1..=6)
        .map(|k| CloneState {
            num_q: 1,
            rem_pre: webdis_pre::parse(&format!("L*{k}·G")).unwrap(),
        })
        .collect();
    group.bench_function("check_miss_and_hit", |b| {
        b.iter(|| {
            let mut table = LogTable::new();
            let node = Url::parse("http://n.test/").unwrap();
            for s in &states {
                black_box(table.check(LogMode::Paper, &id, &node, s, true, 0));
            }
            for s in &states {
                black_box(table.check(LogMode::Paper, &id, &node, s, true, 1));
            }
        });
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let query = webdis_disql::parse_disql(
        r#"select d0.url, d1.url, r.text
           from document d0 such that "http://csa.iisc.ernet.in" L d0,
           where d0.title contains "lab"
                document d1 such that d0 G·(L*1) d1,
                relinfon r such that r.delimiter = "hr",
           where r.text contains "convener""#,
    )
    .unwrap();
    let clone = QueryClone {
        id: QueryId {
            user: "maya".into(),
            host: "user.test".into(),
            port: 9,
            query_num: 1,
        },
        dest_nodes: query.start_nodes.clone(),
        rem_pre: query.stages[0].pre.clone(),
        stages: query.stages,
        stage_offset: 0,
        hops: 3,
        ack_host: "user.test".into(),
        ack_port: 9,
    };
    let msg = Message::Query(clone);
    let bytes = encode_message(&msg);
    group.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_query_clone", |b| {
        b.iter(|| encode_message(black_box(&msg)));
    });
    group.bench_function("decode_query_clone", |b| {
        b.iter(|| {
            let mut slice = black_box(bytes.as_slice());
            Message::decode(&mut slice).unwrap()
        });
    });
    group.finish();
}

fn bench_webgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("webgen");
    group.sample_size(20);
    group.bench_function("generate_16x4", |b| {
        b.iter(|| {
            generate(black_box(&WebGenConfig {
                sites: 16,
                docs_per_site: 4,
                ..WebGenConfig::default()
            }))
        });
    });
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    use webdis_trace::{TraceEvent, TraceHandle, TraceRecord};
    let mut group = c.benchmark_group("trace");
    let make = |i: u64| TraceRecord {
        time_us: i,
        site: "a.test".into(),
        query: None,
        hop: Some(1),
        event: TraceEvent::QueryRecv { nodes: 1 },
    };
    let noop = TraceHandle::noop();
    group.bench_function("emit_disabled", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(&noop).emit_with(|| make(i));
        });
    });
    let (_collector, handle) = TraceHandle::collecting(4096);
    group.bench_function("emit_collecting", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(&handle).emit_with(|| make(i));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pre,
    bench_html,
    bench_rel,
    bench_logtable,
    bench_wire,
    bench_webgen,
    bench_trace
);
criterion_main!(benches);
